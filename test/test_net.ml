(* lib/net — NIC, lossy links, the cluster stepper and the distributed
   token ring. *)

let case = Helpers.case
let check_int = Helpers.check_int
let check_bool = Helpers.check_bool

module Nic = Ssos_net.Nic
module Link = Ssos_net.Link
module Cluster = Ssos_net.Cluster
module Net_ring = Ssos_net.Net_ring
module Rng = Ssx_faults.Rng

(* --- NIC ------------------------------------------------------------ *)

let test_nic_guest_io () =
  (* A guest reads a delivered word through the dx-named RX port and
     echoes it back out of the TX port. *)
  let machine, _ =
    Helpers.machine_with
      "mov dx, 0x31\n\
       in ax, dx\n\
       mov bx, ax\n\
       mov dx, 0x30\n\
       out dx, ax\n\
       out 0x30, ax\n\
       hlt\n"
  in
  let nic = Nic.create () in
  Nic.attach nic machine;
  check_bool "delivered" true (Nic.deliver nic 0x1234);
  Helpers.run_to_halt machine;
  check_int "guest read the word" 0x1234 (Helpers.regs machine).Ssx.Registers.bx;
  (match Nic.drain_tx nic with
  | [ 0x1234; 0x1234 ] -> ()
  | words ->
    Alcotest.failf "unexpected TX drain: [%s]"
      (String.concat "; " (List.map string_of_int words)));
  let stats = Nic.stats nic in
  check_int "tx counted" 2 stats.Nic.tx_words;
  check_int "rx read counted" 1 stats.Nic.rx_read

let test_nic_overflow () =
  let machine, _ = Helpers.machine_with "hlt\n" in
  let nic = Nic.create ~capacity:2 () in
  Nic.attach nic machine;
  check_bool "first fits" true (Nic.deliver nic 1);
  check_bool "second fits" true (Nic.deliver nic 2);
  check_bool "third dropped" false (Nic.deliver nic 3);
  check_int "pending" 2 (Nic.pending_rx nic);
  check_int "dropped counted" 1 (Nic.stats nic).Nic.rx_dropped

let test_nic_hwm_and_drops () =
  (* The RX high-water mark records the deepest queue occupancy ever
     reached — not the current depth — and overflow drops are counted;
     both publish through Device_obs as back-pressure gauges. *)
  let machine, _ =
    Helpers.machine_with "mov dx, 0x31\nin ax, dx\nin ax, dx\nhlt\n"
  in
  let nic = Nic.create ~capacity:3 () in
  Nic.attach nic machine;
  check_int "hwm starts at zero" 0 (Nic.stats nic).Nic.rx_hwm;
  check_bool "first fits" true (Nic.deliver nic 1);
  check_bool "second fits" true (Nic.deliver nic 2);
  check_int "hwm tracks occupancy" 2 (Nic.stats nic).Nic.rx_hwm;
  check_bool "third fits" true (Nic.deliver nic 3);
  check_bool "fourth dropped" false (Nic.deliver nic 4);
  Helpers.run_to_halt machine;
  check_int "guest drained two words" 1 (Nic.pending_rx nic);
  let stats = Nic.stats nic in
  check_int "hwm is the deepest occupancy, not the current" 3 stats.Nic.rx_hwm;
  check_int "overflow counted" 1 stats.Nic.rx_dropped;
  let module Obs = Ssos_obs.Obs in
  Obs.reset ();
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
    (fun () ->
      Nic.observe ~label:"t" nic;
      let rows = (Obs.snapshot ()).Obs.rows in
      let gauge name =
        match
          List.find_opt (fun (r : Obs.row) -> r.Obs.name = name) rows
        with
        | Some { Obs.value = Obs.Gauge v; _ } -> v
        | Some _ | None -> Alcotest.failf "no gauge %s" name
      in
      check_bool "rx-hwm gauge" true (gauge "device.nic{id=t}.rx-hwm" = 3.);
      check_bool "rx-dropped gauge" true
        (gauge "device.nic{id=t}.rx-dropped" = 1.))

let test_nic_empty_rx_reads_zero () =
  let machine, _ =
    Helpers.machine_with "mov dx, 0x31\nin ax, dx\nmov dx, 0x32\nin ax, dx\nhlt\n"
  in
  let nic = Nic.create () in
  Nic.attach nic machine;
  Helpers.run_to_halt machine;
  check_int "empty queue reads zero, status zero" 0
    (Helpers.regs machine).Ssx.Registers.ax

let test_nic_rx_interrupt () =
  let machine, _ = Helpers.machine_with "cli\nhlt\n" in
  let nic = Nic.create ~rx_irq:0x21 () in
  Nic.attach nic machine;
  Helpers.run_to_halt machine;
  let cpu = Ssx.Machine.cpu machine in
  check_bool "no interrupt while empty" true (cpu.Ssx.Cpu.intr = None);
  ignore (Nic.deliver nic 7);
  ignore (Ssx.Machine.tick machine);
  check_bool "interrupt asserted while pending" true
    (cpu.Ssx.Cpu.intr = Some 0x21)

let test_nic_snapshot_roundtrip () =
  let machine, _ = Helpers.machine_with "hlt\n" in
  let nic = Nic.create () in
  Nic.attach nic machine;
  ignore (Nic.deliver nic 11);
  let snap = Ssx.Snapshot.capture machine in
  ignore (Nic.deliver nic 22);
  ignore (Nic.deliver nic 33);
  Ssx.Snapshot.restore snap machine;
  check_int "rx queue rewound" 1 (Nic.pending_rx nic);
  check_int "stats rewound" 1 (Nic.stats nic).Nic.rx_delivered

let test_late_attached_device_refused () =
  (* The regression this guards: a snapshot captured before a device is
     attached has no restore thunk for it; restore must refuse rather
     than silently leak the device's state across trials. *)
  let machine, _ = Helpers.machine_with "hlt\n" in
  check_int "no resettables yet" 0 (Ssx.Machine.resettable_count machine);
  let snap = Ssx.Snapshot.capture machine in
  let nic = Nic.create () in
  Nic.attach nic machine;
  check_int "nic registered" 1 (Ssx.Machine.resettable_count machine);
  ignore (Nic.deliver nic 42);
  (match Ssx.Snapshot.restore snap machine with
  | () -> Alcotest.fail "restore over a late-attached NIC must be refused"
  | exception Invalid_argument _ -> ());
  check_int "nic state untouched by the refusal" 1 (Nic.pending_rx nic)

(* --- Link ----------------------------------------------------------- *)

let drain_until link ~last =
  let out = ref [] in
  for now = 0 to last do
    out := !out @ Link.due link ~now
  done;
  !out

let test_link_fifo_under_jitter () =
  let rng = Rng.create 7L in
  let faults = Link.lossy ~max_delay:9 () in
  let link = Link.create ~faults ~rng ~src:0 ~dst:1 () in
  for i = 0 to 49 do
    Link.send link ~now:i i
  done;
  let received = drain_until link ~last:200 in
  check_int "nothing lost" 50 (List.length received);
  check_bool "delivered in send order despite jitter" true
    (received = List.init 50 Fun.id);
  check_int "queue empty" 0 (Link.in_flight link)

let test_link_faults_deterministic () =
  let make () =
    let faults = Link.lossy ~drop:0.3 ~duplicate:0.2 ~max_delay:4 ~corrupt:0.2 () in
    Link.create ~faults ~rng:(Rng.create 99L) ~src:0 ~dst:1 ()
  in
  let run link =
    for i = 0 to 99 do
      Link.send link ~now:i (i * 31)
    done;
    drain_until link ~last:300
  in
  let a = run (make ()) and b = run (make ()) in
  check_bool "same seed, same stream" true (a = b);
  check_bool "drops happened" true (List.length a < 100)

let test_link_never_delivers_same_step () =
  let link = Link.create ~rng:(Rng.create 1L) ~src:0 ~dst:1 () in
  Link.send link ~now:5 77;
  check_int "not due at the send step" 0 (List.length (Link.due link ~now:5));
  check_int "due next step" 1 (List.length (Link.due link ~now:6))

let test_link_capture_restores_fault_phase () =
  let faults = Link.benign () in
  let link = Link.create ~faults ~rng:(Rng.create 3L) ~src:0 ~dst:1 () in
  Link.send link ~now:0 1;
  let restore = Link.capture link in
  faults.Link.drop <- 1.0;
  Link.send link ~now:1 2;
  Link.send link ~now:2 3;
  restore ();
  check_bool "fault phase restored" true (faults.Link.drop = 0.0);
  check_int "in-flight restored" 1 (Link.in_flight link);
  check_int "sent counter restored" 1 (Link.sent link)

(* --- guest image discipline ----------------------------------------- *)

let block_labels =
  [ "start"; "poll"; "take"; "load"; "derive"; "commit"; "announce"; "emit" ]

let test_ring_guest_blocks () =
  List.iter
    (fun bottom ->
      let process = Net_ring.ring_process ~bottom ~index:0 in
      let image =
        Ssx_asm.Assemble.assemble ~origin:0
          ~instr_align:Ssos.Layout.instr_align
          ~symbols:(Ssos.Rom_builder.layout_symbols @ process.Ssos.Process.symbols)
          process.Ssos.Process.source
      in
      (* Every block starts 16-aligned and fits in one 16-byte window —
         the replay-idempotence discipline depends on it. *)
      List.iteri
        (fun i label ->
          check_int
            (Printf.sprintf "%s at block %d (bottom=%b)" label i bottom)
            (i * 16)
            (Ssx_asm.Assemble.symbol image label))
        block_labels;
      match
        Ssos.Process.validate ~model:Ssos.Process.Scheduled
          ~code_len:(String.length image.Ssx_asm.Assemble.bytes)
          image.Ssx_asm.Assemble.bytes
      with
      | Ok () -> ()
      | Error problems ->
        Alcotest.failf "guest violates process restrictions: %s"
          (String.concat "; " problems))
    [ true; false ]

(* --- cluster + ring ------------------------------------------------- *)

let test_ring_fault_free_stays_legal () =
  let ring = Net_ring.build ~n:4 ~seed:11L () in
  let samples = Net_ring.observe ring ~steps:800 in
  check_int "never illegitimate from the zero state" 0
    (Ssx_stab.Distributed.violation_count ~samples)

let test_ring_token_circulates () =
  (* The privilege must move around the whole ring, not sit still. *)
  let ring = Net_ring.build ~n:4 ~seed:12L () in
  let seen = Array.make 4 false in
  let samples = Net_ring.observe ring ~steps:2_000 in
  List.iter
    (fun (s : Ssx_stab.Distributed.sample) ->
      for i = 0 to 3 do
        if Ssx_stab.Distributed.privileged ~states:s.states i then
          seen.(i) <- true
      done)
    samples;
  check_bool "every node held the privilege" true (Array.for_all Fun.id seen)

let test_cluster_determinism () =
  let run () =
    let ring = Net_ring.build ~n:3 ~seed:21L ~policy:Cluster.Fair_random () in
    Cluster.run ring.Net_ring.cluster ~steps:600;
    Cluster.digest ring.Net_ring.cluster
  in
  Helpers.check_string "identical seeds, identical executions" (run ()) (run ())

let corrupt_everything rng ring =
  let n = ring.Net_ring.n in
  for i = 0 to n - 1 do
    Net_ring.corrupt_state ring i (Rng.int rng 0x10000);
    Net_ring.corrupt_view ring i (Rng.int rng 0x10000)
  done

let convergence_bound = 1_200
(* cluster steps; generous — observed worst cases are well under it *)

let test_ring_converges_from_corruption () =
  (* Acceptance: from >= 20 random joint corruptions the ring reconverges
     to a single privilege, within a stated bound. *)
  let ring = Net_ring.build ~n:4 ~seed:31L () in
  Cluster.run ring.Net_ring.cluster ~steps:200;
  let rng = Rng.create 0xC0FFEEL in
  for trial = 1 to 24 do
    corrupt_everything rng ring;
    let samples = Net_ring.observe ring ~steps:(convergence_bound + 600) in
    match Ssx_stab.Distributed.judge ~window:600 ~samples
            ~end_step:(Cluster.steps ring.Net_ring.cluster)
    with
    | Ssx_stab.Convergence.Converged { at_tick; _ } ->
      let started = Cluster.steps ring.Net_ring.cluster
                    - (convergence_bound + 600) in
      let took = max 0 (at_tick - started) in
      if took > convergence_bound then
        Alcotest.failf "trial %d converged only after %d steps" trial took
    | verdict ->
      Alcotest.failf "trial %d: %s" trial
        (Format.asprintf "%a" Ssx_stab.Convergence.pp_verdict verdict)
  done

let test_ring_converges_under_lossy_links () =
  let faults ~src:_ ~dst:_ = Link.lossy ~drop:0.2 ~max_delay:3 () in
  let ring = Net_ring.build ~n:4 ~seed:41L ~faults () in
  Cluster.run ring.Net_ring.cluster ~steps:200;
  let rng = Rng.create 0xBEEFL in
  for trial = 1 to 6 do
    corrupt_everything rng ring;
    let samples = Net_ring.observe ring ~steps:3_000 in
    match Ssx_stab.Distributed.judge ~window:600 ~samples
            ~end_step:(Cluster.steps ring.Net_ring.cluster)
    with
    | Ssx_stab.Convergence.Converged _ -> ()
    | verdict ->
      Alcotest.failf "lossy trial %d: %s" trial
        (Format.asprintf "%a" Ssx_stab.Convergence.pp_verdict verdict)
  done

let test_cluster_snapshot_reset () =
  (* Restoring a cluster snapshot must reproduce the continuation
     bit-exactly, including link and NIC state. *)
  let ring = Net_ring.build ~n:3 ~seed:51L ~faults:(fun ~src:_ ~dst:_ ->
      Link.lossy ~drop:0.1 ~max_delay:2 ()) ()
  in
  Cluster.run ring.Net_ring.cluster ~steps:300;
  let snap = Cluster.capture ring.Net_ring.cluster in
  let continue () =
    Net_ring.corrupt_state ring 1 0x7777;
    Cluster.run ring.Net_ring.cluster ~steps:400;
    Cluster.digest ring.Net_ring.cluster
  in
  let first = continue () in
  Cluster.restore ring.Net_ring.cluster snap;
  let second = continue () in
  Helpers.check_string "continuation reproduced after restore" first second

(* --- sharded stepper: differential against the sequential reference -- *)

let lossy_faults ~src:_ ~dst:_ = Link.lossy ~drop:0.15 ~max_delay:2 ()

(* Each (name, n, edges) triple is a topology the sharded stepper must
   reproduce bit-exactly.  The guests always run the ring protocol; for
   the non-ring shapes only deterministic traffic matters. *)
let diff_topologies =
  [ ("ring", 8, Cluster.ring_edges ~n:8);
    ("star", 8, Cluster.star_edges ~n:8);
    ("torus", 9, Cluster.torus_edges ~rows:3 ~cols:3);
    ("random", 8, Cluster.random_edges ~n:8 ~degree:3 ~seed:0xD1CEL) ]

let policy_label = function
  | Cluster.Round_robin -> "rr"
  | Cluster.Fair_random -> "fair"
  | Cluster.Daemon d -> d.Ssx_stab.Adversary.name

let test_sharded_digest_matrix () =
  (* Acceptance: sequential vs shards 1/2/4/8, every topology, every
     policy — the built-ins and the adversarial daemons — with lossy
     links throughout: identical digests.  The pure daemons replay on
     every shard like the built-ins; the stateful adaptive adversary
     exercises the forced-sequential fallback. *)
  let ring8 = Cluster.ring_edges ~n:8 in
  let configs =
    List.concat_map
      (fun (name, n, edges) ->
        List.map
          (fun policy -> (name, n, edges, policy, Some lossy_faults))
          [ Cluster.Round_robin; Cluster.Fair_random ])
      diff_topologies
    @ [ ("ring-benign", 8, ring8, Cluster.Round_robin, None);
        ( "ring",
          8,
          ring8,
          Cluster.Daemon (Ssx_stab.Adversary.starve ~victim:2 ()),
          Some lossy_faults );
        ( "ring",
          8,
          ring8,
          Cluster.Daemon
            (Ssx_stab.Adversary.crash ~victim:5 ~down_from:100 ~down_for:120
               ()),
          Some lossy_faults );
        ( "ring",
          8,
          ring8,
          Cluster.Daemon (Ssx_stab.Adversary.adaptive ~k:Net_ring.k ()),
          Some lossy_faults ) ]
  in
  List.iter
    (fun (name, n, edges, policy, faults) ->
      let build () =
        Net_ring.build ~n ~policy ~latency:4 ~edges ?faults ~seed:81L ()
      in
      let reference =
        let ring = build () in
        Cluster.run ring.Net_ring.cluster ~steps:400;
        Cluster.digest ring.Net_ring.cluster
      in
      List.iter
        (fun shards ->
          let ring = build () in
          Cluster.run_sharded ~shards ring.Net_ring.cluster ~steps:400;
          Helpers.check_string
            (Printf.sprintf "%s/%s: sequential = shards:%d" name
               (policy_label policy) shards)
            reference
            (Cluster.digest ring.Net_ring.cluster))
        [ 1; 2; 4; 8 ])
    configs

let test_sharded_snapshot_mid_horizon () =
  (* Capture after a sharded run whose last window was partial (95 is
     not a multiple of the horizon 7), then show the same continuation
     comes out of a sharded run and a sequential run from the
     restored point. *)
  let ring =
    Net_ring.build ~n:6 ~latency:8 ~faults:lossy_faults ~seed:82L ()
  in
  Cluster.run_sharded ~shards:4 ring.Net_ring.cluster ~steps:95;
  let snap = Cluster.capture ring.Net_ring.cluster in
  Cluster.run_sharded ~shards:2 ring.Net_ring.cluster ~steps:101;
  let sharded = Cluster.digest ring.Net_ring.cluster in
  Cluster.restore ring.Net_ring.cluster snap;
  Cluster.run ring.Net_ring.cluster ~steps:101;
  Helpers.check_string "mid-horizon snapshot: sharded and sequential continuations agree"
    sharded
    (Cluster.digest ring.Net_ring.cluster)

let test_sharded_observe_invariance () =
  (* The reconstructed sample stream equals the sequential one. *)
  let build () =
    Net_ring.build ~n:5 ~policy:Cluster.Fair_random ~latency:4
      ~faults:lossy_faults ~seed:83L ()
  in
  let sequential =
    let ring = build () in
    Net_ring.observe ring ~steps:300
  in
  List.iter
    (fun shards ->
      let ring = build () in
      let samples = Net_ring.observe ~shards ring ~steps:300 in
      check_bool
        (Printf.sprintf "samples identical at shards:%d" shards)
        true (samples = sequential))
    [ 1; 2; 4 ]

let test_sharded_convergence_step_invariance () =
  (* run_until_legitimate returns the exact first legitimate step under
     any shard count, equal to the sequential answer. *)
  let build () =
    let ring = Net_ring.build ~n:4 ~latency:4 ~seed:84L () in
    Cluster.run ring.Net_ring.cluster ~steps:200;
    let rng = Rng.create 0xABBAL in
    corrupt_everything rng ring;
    ring
  in
  let sequential = Net_ring.run_until_legitimate (build ()) ~limit:4_000 in
  check_bool "sequential converged" true (sequential <> None);
  List.iter
    (fun shards ->
      let answer =
        Net_ring.run_until_legitimate ~shards (build ()) ~limit:4_000
      in
      check_bool
        (Printf.sprintf "same first legitimate step at shards:%d" shards)
        true (answer = sequential))
    [ 2; 4 ]

(* --- sparse topologies ----------------------------------------------- *)

let degrees ~n edges =
  let out = Array.make n 0 and in_ = Array.make n 0 in
  List.iter
    (fun (s, d) ->
      out.(s) <- out.(s) + 1;
      in_.(d) <- in_.(d) + 1)
    edges;
  (out, in_)

let reachable ~n edges ~from =
  let adj = Array.make n [] in
  List.iter (fun (s, d) -> adj.(s) <- d :: adj.(s)) edges;
  let seen = Array.make n false in
  let rec visit i =
    if not seen.(i) then begin
      seen.(i) <- true;
      List.iter visit adj.(i)
    end
  in
  visit from;
  Array.for_all Fun.id seen

let test_torus_topology () =
  let rows = 4 and cols = 5 in
  let n = rows * cols in
  let edges = Cluster.torus_edges ~rows ~cols in
  let out, in_ = degrees ~n edges in
  check_bool "out-degree 4 everywhere" true (Array.for_all (( = ) 4) out);
  check_bool "in-degree 4 everywhere" true (Array.for_all (( = ) 4) in_);
  check_bool "no self loops" true (List.for_all (fun (s, d) -> s <> d) edges);
  check_bool "strongly connected" true
    (List.for_all (fun from -> reachable ~n edges ~from) (List.init n Fun.id));
  (* 2-wide dimensions deduplicate the wraparound pair. *)
  let out2, _ = degrees ~n:6 (Cluster.torus_edges ~rows:2 ~cols:3) in
  check_bool "rows=2 dedupes to out-degree 3" true
    (Array.for_all (( = ) 3) out2)

let test_random_topology () =
  let n = 32 and degree = 4 in
  let edges = Cluster.random_edges ~n ~degree ~seed:0xFEEDL in
  let out, _ = degrees ~n edges in
  check_bool "exact out-degree" true (Array.for_all (( = ) degree) out);
  check_bool "no self loops" true (List.for_all (fun (s, d) -> s <> d) edges);
  check_int "no duplicate edges" (List.length edges)
    (List.length (List.sort_uniq compare edges));
  check_bool "strongly connected" true
    (List.for_all (fun from -> reachable ~n edges ~from) (List.init n Fun.id));
  check_bool "deterministic in the seed" true
    (edges = Cluster.random_edges ~n ~degree ~seed:0xFEEDL);
  check_bool "seed changes the graph" true
    (edges <> Cluster.random_edges ~n ~degree ~seed:0xBEEFL)

let test_random_topology_properties () =
  (* Across small sizes, degrees and many seeds, every draw must be a
     simple strongly connected digraph.  Out-degree is [>= degree], not
     [=]: disconnected degree-1 draws are repaired by adding
     ring-successor edges, which can only raise degrees. *)
  for n = 4 to 12 do
    for degree = 1 to 3 do
      for seed = 1 to 20 do
        let label = Printf.sprintf "n=%d degree=%d seed=%d" n degree seed in
        let edges =
          Cluster.random_edges ~n ~degree
            ~seed:(Int64.of_int ((n * 1000) + (degree * 100) + seed))
        in
        let out, _ = degrees ~n edges in
        check_bool (label ^ ": out-degree covers the request") true
          (Array.for_all (fun d -> d >= degree) out);
        check_bool (label ^ ": no self loops") true
          (List.for_all (fun (s, d) -> s <> d) edges);
        check_int (label ^ ": no duplicate edges") (List.length edges)
          (List.length (List.sort_uniq compare edges));
        check_bool (label ^ ": strongly connected") true
          (List.for_all
             (fun from -> reachable ~n edges ~from)
             (List.init n Fun.id))
      done
    done
  done

let test_observe_aggregate_mode () =
  let module Obs = Ssos_obs.Obs in
  Obs.reset ();
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
    (fun () ->
      let ring = Net_ring.build ~n:4 ~faults:lossy_faults ~obs:false ~seed:85L () in
      Cluster.observe ~prefix:"agg" ~per_link:false ring.Net_ring.cluster;
      Cluster.run ring.Net_ring.cluster ~steps:500;
      let rows = (Obs.snapshot ()).Obs.rows in
      let gauge name =
        match List.find_opt (fun (r : Obs.row) -> r.Obs.name = name) rows with
        | Some { Obs.value = Obs.Gauge v; _ } -> v
        | Some _ | None -> Alcotest.failf "no gauge %s" name
      in
      check_bool "no per-link entries in aggregate mode" true
        (List.for_all
           (fun (r : Obs.row) ->
             not
               (String.length r.Obs.name >= 9
               && String.sub r.Obs.name 0 9 = "agg.link{"))
           rows);
      let links = Cluster.links ring.Net_ring.cluster in
      let sum read =
        float_of_int (Array.fold_left (fun acc l -> acc + read l) 0 links)
      in
      check_bool "total sent" true (gauge "agg.links.sent" = sum Link.sent);
      check_bool "total dropped" true
        (gauge "agg.links.dropped" = sum Link.dropped);
      check_bool "total delivered" true
        (gauge "agg.links.delivered" = sum Link.delivered);
      check_bool "link count" true
        (gauge "agg.links.count" = float_of_int (Array.length links));
      let drops = Array.map Link.dropped links in
      Array.sort compare drops;
      check_bool "drop max" true
        (gauge "agg.links.drops.max"
        = float_of_int drops.(Array.length drops - 1)))

let campaign ~strategy ~jobs () =
  (* A T14/T15-style campaign in miniature: lossy links, joint
     corruption plus a message-fault phase that mutates the link fault
     models mid-trial (so snapshot reset must restore that too). *)
  let build () =
    Net_ring.build ~n:3 ~seed:61L
      ~faults:(fun ~src:_ ~dst:_ -> Link.lossy ~drop:0.1 ~max_delay:2 ())
      ()
  in
  let perturb rng ring =
    corrupt_everything rng ring;
    let links = Cluster.links ring.Net_ring.cluster in
    Array.iter (fun l -> (Link.faults l).Link.drop <- 0.5) links;
    Cluster.run ring.Net_ring.cluster ~steps:50;
    Array.iter (fun l -> (Link.faults l).Link.drop <- 0.1) links
  in
  Ssos_experiments.Runner.ring_campaign ~build ~perturb ~warmup:150
    ~horizon:1_500 ~window:500 ~strategy ~oversubscribe:true ~jobs ~trials:6
    ~seed:71L ()

let test_campaign_jobs_invariance () =
  (* Acceptance: the same campaign is bit-identical under jobs:1 and
     jobs:4 — parallelism lives across trials only. *)
  let one = campaign ~strategy:Ssos_experiments.Runner.Snapshot_reset ~jobs:1 () in
  let four = campaign ~strategy:Ssos_experiments.Runner.Snapshot_reset ~jobs:4 () in
  check_bool "summary identical for jobs:1 and jobs:4" true (one = four);
  check_int "every trial judged" 6 one.Ssos_experiments.Runner.trials

let test_campaign_strategy_invariance () =
  (* Acceptance: rebuilding per trial and restoring a cluster snapshot
     per trial produce the same summary — T14/T15 are reproducible
     under snapshot reset. *)
  let rebuild = campaign ~strategy:Ssos_experiments.Runner.Rebuild ~jobs:2 () in
  let reset = campaign ~strategy:Ssos_experiments.Runner.Snapshot_reset ~jobs:3 () in
  check_bool "summary identical for rebuild and snapshot reset" true
    (rebuild = reset)

let test_campaign_obs_invariance () =
  (* Cluster digests and campaign summaries are bit-identical with
     metrics on or off: link counters feed sampled gauges only, and
     nothing on the send/deliver path consumes extra randomness. *)
  let module Obs = Ssos_obs.Obs in
  Obs.reset ();
  Obs.set_enabled false;
  let off = campaign ~strategy:Ssos_experiments.Runner.Snapshot_reset ~jobs:2 () in
  let digest_off =
    let ring = Net_ring.build ~n:3 ~seed:61L ~obs:false () in
    Cluster.run ring.Net_ring.cluster ~steps:400;
    Cluster.digest ring.Net_ring.cluster
  in
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
    (fun () ->
      let on_ = campaign ~strategy:Ssos_experiments.Runner.Snapshot_reset ~jobs:2 () in
      check_bool "summary identical with metrics on" true (off = on_);
      Obs.reset ();
      let ring = Net_ring.build ~n:3 ~seed:61L ~obs:true () in
      Cluster.run ring.Net_ring.cluster ~steps:400;
      check_bool "digest identical with metrics on" true
        (digest_off = Cluster.digest ring.Net_ring.cluster);
      (* The instrumented build registered per-link and per-NIC gauges,
         and their values agree with the link counters. *)
      let rows = (Obs.snapshot ()).Obs.rows in
      let gauge name =
        match
          List.find_opt (fun (r : Obs.row) -> r.Obs.name = name) rows
        with
        | Some { Obs.value = Obs.Gauge v; _ } -> v
        | Some _ | None -> Alcotest.failf "no gauge %s" name
      in
      let link = (Cluster.links ring.Net_ring.cluster).(0) in
      let prefix =
        Printf.sprintf "net.link{%d->%d}" (Link.src link) (Link.dst link)
      in
      check_bool "sent gauge tracks the link" true
        (gauge (prefix ^ ".sent") = float_of_int (Link.sent link));
      check_bool "delivered gauge tracks the link" true
        (gauge (prefix ^ ".delivered") = float_of_int (Link.delivered link));
      check_bool "cluster step gauge" true
        (gauge "net.cluster.steps" = 400.);
      (* Word conservation: everything submitted was delivered, dropped
         or is still in flight (corruption garbles, it never consumes). *)
      Array.iter
        (fun l ->
          check_int "sent = delivered + dropped + in-flight" (Link.sent l)
            (Link.delivered l + Link.dropped l + Link.in_flight l))
        (Cluster.links ring.Net_ring.cluster))

let suite =
  [ case "nic: guest port I/O" test_nic_guest_io;
    case "nic: bounded RX queue drops and counts" test_nic_overflow;
    case "nic: RX high-water mark and drop gauges" test_nic_hwm_and_drops;
    case "nic: empty RX reads zero" test_nic_empty_rx_reads_zero;
    case "nic: RX interrupt" test_nic_rx_interrupt;
    case "nic: snapshot round-trip" test_nic_snapshot_roundtrip;
    case "snapshot refuses late-attached devices" test_late_attached_device_refused;
    case "link: FIFO under delay jitter" test_link_fifo_under_jitter;
    case "link: seeded faults are deterministic" test_link_faults_deterministic;
    case "link: at least one step of latency" test_link_never_delivers_same_step;
    case "link: capture restores the fault phase" test_link_capture_restores_fault_phase;
    case "ring guest: 16-byte replay blocks" test_ring_guest_blocks;
    case "ring: fault-free run stays legal" test_ring_fault_free_stays_legal;
    case "ring: the token circulates" test_ring_token_circulates;
    case "cluster: deterministic execution" test_cluster_determinism;
    case "ring: converges from 24 joint corruptions" test_ring_converges_from_corruption;
    case "ring: converges under lossy links" test_ring_converges_under_lossy_links;
    case "cluster: snapshot reset reproduces continuations" test_cluster_snapshot_reset;
    case "sharded: digest matrix vs sequential" test_sharded_digest_matrix;
    case "sharded: mid-horizon snapshot round-trip" test_sharded_snapshot_mid_horizon;
    case "sharded: observe samples invariant" test_sharded_observe_invariance;
    case "sharded: convergence step invariant" test_sharded_convergence_step_invariance;
    case "topology: torus degree and connectivity" test_torus_topology;
    case "topology: random graph degree and connectivity" test_random_topology;
    case "topology: random graphs are simple and connected across seeds"
      test_random_topology_properties;
    case "observe: aggregate mode totals" test_observe_aggregate_mode;
    case "campaign: bit-identical across jobs" test_campaign_jobs_invariance;
    case "campaign: bit-identical across strategies" test_campaign_strategy_invariance;
    case "campaign and digest: bit-identical with metrics on"
      test_campaign_obs_invariance ]
