let case = Helpers.case
let check_int = Helpers.check_int

let test_get_set16 () =
  let r = Ssx.Registers.create () in
  List.iter
    (fun reg ->
      Ssx.Registers.set16 r reg 0x1234;
      check_int "roundtrip" 0x1234 (Ssx.Registers.get16 r reg);
      Ssx.Registers.set16 r reg 0)
    Ssx.Registers.all_reg16

let test_set16_masks () =
  let r = Ssx.Registers.create () in
  Ssx.Registers.set16 r Ssx.Registers.AX 0x12345;
  check_int "masked" 0x2345 (Ssx.Registers.get16 r Ssx.Registers.AX)

let test_byte_halves () =
  let r = Ssx.Registers.create () in
  Ssx.Registers.set16 r Ssx.Registers.AX 0x1234;
  check_int "al" 0x34 (Ssx.Registers.get8 r Ssx.Registers.AL);
  check_int "ah" 0x12 (Ssx.Registers.get8 r Ssx.Registers.AH);
  Ssx.Registers.set8 r Ssx.Registers.AL 0xFF;
  check_int "al write keeps ah" 0x12FF (Ssx.Registers.get16 r Ssx.Registers.AX);
  Ssx.Registers.set8 r Ssx.Registers.AH 0x99;
  check_int "ah write keeps al" 0x99FF (Ssx.Registers.get16 r Ssx.Registers.AX)

let test_all_byte_registers () =
  let r = Ssx.Registers.create () in
  List.iter
    (fun reg ->
      Ssx.Registers.set8 r reg 0xAB;
      check_int "byte roundtrip" 0xAB (Ssx.Registers.get8 r reg);
      Ssx.Registers.set8 r reg 0)
    Ssx.Registers.all_reg8

let test_sregs () =
  let r = Ssx.Registers.create () in
  List.iter
    (fun reg ->
      Ssx.Registers.set_sreg r reg 0xF000;
      check_int "sreg roundtrip" 0xF000 (Ssx.Registers.get_sreg r reg);
      Ssx.Registers.set_sreg r reg 0)
    Ssx.Registers.all_sreg

let test_indices_roundtrip () =
  List.iter
    (fun reg ->
      match Ssx.Registers.reg16_of_index (Ssx.Registers.reg16_index reg) with
      | Some back -> Alcotest.(check bool) "index roundtrip" true (back = reg)
      | None -> Alcotest.fail "missing index")
    Ssx.Registers.all_reg16;
  List.iter
    (fun reg ->
      match Ssx.Registers.reg8_of_index (Ssx.Registers.reg8_index reg) with
      | Some back -> Alcotest.(check bool) "index roundtrip" true (back = reg)
      | None -> Alcotest.fail "missing index")
    Ssx.Registers.all_reg8;
  List.iter
    (fun reg ->
      match Ssx.Registers.sreg_of_index (Ssx.Registers.sreg_index reg) with
      | Some back -> Alcotest.(check bool) "index roundtrip" true (back = reg)
      | None -> Alcotest.fail "missing index")
    Ssx.Registers.all_sreg

let test_names_roundtrip () =
  List.iter
    (fun reg ->
      Alcotest.(check bool)
        "name roundtrip" true
        (Ssx.Registers.reg16_of_name (Ssx.Registers.reg16_name reg) = Some reg))
    Ssx.Registers.all_reg16;
  Alcotest.(check bool) "unknown name" true (Ssx.Registers.reg16_of_name "zz" = None)

let test_out_of_range_indices () =
  Alcotest.(check bool) "reg16 index 8" true (Ssx.Registers.reg16_of_index 8 = None);
  Alcotest.(check bool) "sreg index 6" true (Ssx.Registers.sreg_of_index 6 = None);
  Alcotest.(check bool) "negative" true (Ssx.Registers.reg8_of_index (-1) = None)

let test_copy_is_snapshot () =
  let r = Ssx.Registers.create () in
  Ssx.Registers.set16 r Ssx.Registers.BX 7;
  let snapshot = Ssx.Registers.copy r in
  Ssx.Registers.set16 r Ssx.Registers.BX 9;
  check_int "snapshot unchanged" 7 (Ssx.Registers.get16 snapshot Ssx.Registers.BX);
  check_int "original changed" 9 (Ssx.Registers.get16 r Ssx.Registers.BX)

let prop_byte_halves_consistent =
  QCheck.Test.make ~name:"8-bit halves always compose the 16-bit register"
    (QCheck.pair (QCheck.int_bound 0xFF) (QCheck.int_bound 0xFF))
    (fun (low, high) ->
      let r = Ssx.Registers.create () in
      Ssx.Registers.set8 r Ssx.Registers.CL low;
      Ssx.Registers.set8 r Ssx.Registers.CH high;
      Ssx.Registers.get16 r Ssx.Registers.CX = (high lsl 8) lor low)

let suite =
  [ case "16-bit get/set" test_get_set16;
    case "set16 masks values" test_set16_masks;
    case "byte halves of ax" test_byte_halves;
    case "all byte registers" test_all_byte_registers;
    case "segment registers" test_sregs;
    case "encoding indices roundtrip" test_indices_roundtrip;
    case "names roundtrip" test_names_roundtrip;
    case "out-of-range indices" test_out_of_range_indices;
    case "copy is a snapshot" test_copy_is_snapshot ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_byte_halves_consistent ]
