let case = Helpers.case
let check_int = Helpers.check_int
let check_bool = Helpers.check_bool

(* Run a guest image bare: install at OS_SEGMENT and jump in. *)
let boot_guest guest =
  let machine = Ssx.Machine.create () in
  Ssx.Memory.load_image (Ssx.Machine.memory machine)
    ~base:(Ssos.Layout.os_segment lsl 4)
    (Ssos.Guest.image_bytes guest);
  let regs = (Ssx.Machine.cpu machine).Ssx.Cpu.regs in
  regs.Ssx.Registers.cs <- Ssos.Layout.os_segment;
  regs.Ssx.Registers.ip <- 0;
  let hb = Ssx_devices.Heartbeat.create () in
  Ssx_devices.Heartbeat.attach hb ~port:Ssos.Layout.heartbeat_port machine;
  (machine, hb)

let test_images_fit () =
  List.iter
    (fun guest ->
      let bytes = Ssos.Guest.image_bytes guest in
      check_int "padded to image size" Ssos.Layout.os_image_size
        (String.length bytes))
    [ Ssos.Guest.heartbeat_kernel (); Ssos.Guest.task_kernel () ]

let test_heartbeat_kernel_beats () =
  let machine, hb = boot_guest (Ssos.Guest.heartbeat_kernel ()) in
  Ssx.Machine.run machine ~ticks:2_000;
  let samples = Ssx_devices.Heartbeat.samples hb in
  check_bool "several beats" true (List.length samples > 5);
  List.iteri
    (fun i s -> check_int "strictly incrementing" (i + 1) s.Ssx_devices.Heartbeat.value)
    samples

let test_heartbeat_kernel_work_units () =
  (* Larger work units stretch the interval between beats. *)
  let beats work =
    let machine, hb = boot_guest (Ssos.Guest.heartbeat_kernel ~work_units:work ()) in
    Ssx.Machine.run machine ~ticks:5_000;
    Ssx_devices.Heartbeat.count hb
  in
  check_bool "more work, fewer beats" true (beats 500 < beats 50)

let test_task_kernel_beats () =
  let machine, hb = boot_guest (Ssos.Guest.task_kernel ()) in
  Ssx.Machine.run machine ~ticks:5_000;
  let samples = Ssx_devices.Heartbeat.samples hb in
  check_bool "several beats" true (List.length samples > 3);
  List.iteri
    (fun i s -> check_int "strictly incrementing" (i + 1) s.Ssx_devices.Heartbeat.value)
    samples

let test_task_kernel_data_addresses () =
  let machine, hb = boot_guest (Ssos.Guest.task_kernel ()) in
  Ssx.Machine.run machine ~ticks:5_000;
  let mem = Ssx.Machine.memory machine in
  let counter = Ssx.Memory.read_word mem Ssos.Guest.counter_addr in
  (match Ssx_devices.Heartbeat.last hb with
  | Some s -> check_int "counter address matches output" s.Ssx_devices.Heartbeat.value counter
  | None -> Alcotest.fail "no beats");
  check_int "liveness mirrors the counter" counter
    (Ssx.Memory.read_word mem Ssos.Guest.liveness_addr);
  let index = Ssx.Memory.read_word mem Ssos.Guest.task_index_addr in
  check_bool "index in range" true (index < 4);
  check_int "first table entry is the golden increment" 1
    (Ssx.Memory.read_word mem Ssos.Guest.task_table_addr);
  check_int "second is the divisor" Ssos.Guest.task_divisor
    (Ssx.Memory.read_word mem (Ssos.Guest.task_table_addr + 2))

let test_task_kernel_divide_fault_on_zero_divisor () =
  let machine, _ = boot_guest (Ssos.Guest.task_kernel ()) in
  let mem = Ssx.Machine.memory machine in
  (* Park a hlt behind IDT vector 0 to observe the #DE. *)
  Ssx.Memory.write_word mem 0 0x40;
  Ssx.Memory.write_word mem 2 0x0777;
  Ssx.Memory.write_byte mem 0x77B0 0x71;
  Ssx.Memory.write_word mem (Ssos.Guest.task_table_addr + 2) 0;
  (match
     Ssx.Machine.run_until machine ~limit:10_000 (fun m ->
         (Ssx.Machine.cpu m).Ssx.Cpu.halted)
   with
  | Some _ -> ()
  | None -> Alcotest.fail "no divide fault observed");
  check_int "vectored to the #DE handler" 0x0777
    ((Ssx.Machine.cpu machine).Ssx.Cpu.regs.Ssx.Registers.cs)

let test_task_kernel_runaway_index () =
  (* The naive wrap check only catches the exact boundary: a corrupted
     index keeps running — the weakness the §4 monitor exists for. *)
  let machine, hb = boot_guest (Ssos.Guest.task_kernel ()) in
  let mem = Ssx.Machine.memory machine in
  Ssx.Machine.run machine ~ticks:2_000;
  Ssx.Memory.write_word mem Ssos.Guest.task_index_addr 0x0100;
  Ssx.Machine.run machine ~ticks:2_000;
  let index = Ssx.Memory.read_word mem Ssos.Guest.task_index_addr in
  check_bool "index stays out of range" true (index >= 4);
  ignore hb

let test_symbols_exposed () =
  let guest = Ssos.Guest.heartbeat_kernel () in
  check_int "entry label" 0 (Ssos.Guest.symbol guest "start");
  check_int "tick counter" Ssos.Layout.os_data_offset
    (Ssos.Guest.symbol guest "TICK_COUNTER")

let test_task_count_validation () =
  check_bool "zero tasks rejected" true
    (match Ssos.Guest.task_kernel ~tasks:0 () with
    | _ -> false
    | exception Invalid_argument _ -> true)

let suite =
  [ case "images are padded to the image size" test_images_fit;
    case "heartbeat kernel beats incrementally" test_heartbeat_kernel_beats;
    case "work units stretch the beat interval" test_heartbeat_kernel_work_units;
    case "task kernel beats incrementally" test_task_kernel_beats;
    case "task kernel data addresses" test_task_kernel_data_addresses;
    case "zero divisor raises #DE" test_task_kernel_divide_fault_on_zero_divisor;
    case "runaway index is not self-corrected" test_task_kernel_runaway_index;
    case "symbols exposed" test_symbols_exposed;
    case "task count validated" test_task_count_validation ]
