(* lib/stabilization/model — the exhaustive explicit-state checker for
   Dijkstra's K-state ring on abstract configurations. *)

let case = Helpers.case
let check_int = Helpers.check_int
let check_bool = Helpers.check_bool

module Model = Ssx_stab.Model

(* Closed form for the legitimate set: exactly one privilege.  Node 0
   alone: all equal (k configs).  Node i > 0 alone: x0..x(i-1) equal to
   some a, xi..x(n-1) equal to some b <> a — (n-1) positions times
   k * (k-1) value pairs. *)
let legit_closed_form ~n ~k = k + ((n - 1) * k * (k - 1))

let test_encode_decode_roundtrip () =
  let m = Model.create ~n:4 ~k:5 in
  for idx = 0 to m.Model.size - 1 do
    let config = Model.decode m idx in
    check_int "decode/encode round-trip" idx (Model.encode m config)
  done;
  let rng = Ssx_faults.Rng.create 0x5EEDL in
  for _ = 1 to 200 do
    let config = Array.init 4 (fun _ -> Ssx_faults.Rng.int rng 5) in
    check_bool "encode/decode round-trip" true
      (Model.decode m (Model.encode m config) = config)
  done;
  check_int "clamp a corrupted word" 4 (Model.clamp m 0x1238);
  check_int "clamp a negative word" 3 (Model.clamp m (-2))

let test_hand_checks_n3_k4 () =
  (* Everything small enough to verify by hand: n=3, K=4, 64 configs. *)
  let tb = Model.analyze ~n:3 ~k:4 in
  let m = tb.Model.model in
  check_int "size" 64 m.Model.size;
  check_int "legitimate count" 28 (Model.legitimate_count tb);
  check_int "legitimate count closed form" (legit_closed_form ~n:3 ~k:4)
    (Model.legitimate_count tb);
  check_int "no divergence at K = n + 1" 0 (Model.divergent tb);
  (* [0;0;0]: only node 0 is privileged — legitimate, zero moves. *)
  check_bool "uniform config is legitimate" true
    (Model.legitimate m [| 0; 0; 0 |]);
  check_int "legitimate config needs no moves" 0 (Model.best_of tb [| 0; 0; 0 |]);
  check_int "legitimate config fears no daemon" 0
    (Model.worst_of tb [| 0; 0; 0 |]);
  (* [0;1;0]: all three nodes privileged — one move under a cooperative
     daemon (fire node 1 or node 2), never more than the global worst. *)
  check_int "three tokens" 3 (Model.token_count m [| 0; 1; 0 |]);
  check_bool "node 0 enabled (x0 = x2)" true (Model.enabled m [| 0; 1; 0 |] 0);
  check_int "one cooperative move from [0;1;0]" 1
    (Model.best_of tb [| 0; 1; 0 |]);
  check_bool "worst >= best at [0;1;0]" true
    (Model.worst_of tb [| 0; 1; 0 |] >= Model.best_of tb [| 0; 1; 0 |]);
  (* fire semantics: node 0 increments mod K, others copy. *)
  let c = [| 3; 3; 3 |] in
  Model.fire m c 0;
  check_bool "bottom increments modulo K" true (c = [| 0; 3; 3 |]);
  let c = [| 0; 1; 0 |] in
  Model.fire m c 1;
  check_bool "copier copies" true (c = [| 0; 0; 0 |]);
  (* lookups clamp raw words entrywise. *)
  check_int "raw corrupted words clamp before lookup"
    (Model.best_of tb [| 0; 1; 0 |])
    (Model.best_of tb [| 0x1234; 0xABC1; 0x5678 |])

let test_grid_k_n_plus_one () =
  (* The ISSUE's grid: n = 3..6 at K = n + 1, full enumeration.  The
     protocol stabilizes (no divergent configuration) and the bounds
     behave: 0 < best <= n - 1 <= worst, worst >= best pointwise. *)
  List.iter
    (fun n ->
      let k = n + 1 in
      let tb = Model.analyze ~n ~k in
      let m = tb.Model.model in
      check_int (Printf.sprintf "n=%d: size k^n" n)
        (int_of_float (float_of_int k ** float_of_int n))
        m.Model.size;
      check_int (Printf.sprintf "n=%d: divergent" n) 0 (Model.divergent tb);
      check_int
        (Printf.sprintf "n=%d: legitimate count" n)
        (legit_closed_form ~n ~k)
        (Model.legitimate_count tb);
      check_bool
        (Printf.sprintf "n=%d: best bound in (0, n-1]" n)
        true
        (Model.best_bound tb > 0 && Model.best_bound tb <= n - 1);
      check_bool
        (Printf.sprintf "n=%d: worst bound dominates best bound" n)
        true
        (Model.worst_bound tb >= Model.best_bound tb);
      (* Pointwise: every configuration resolved, worst >= best, and
         zero moves exactly on the legitimate set. *)
      let zeros = ref 0 in
      for idx = 0 to m.Model.size - 1 do
        let b = tb.Model.best.(idx) and w = tb.Model.worst.(idx) in
        if w < b then
          Alcotest.failf "n=%d: config %d has worst %d < best %d" n idx w b;
        if b = 0 then incr zeros
      done;
      check_int
        (Printf.sprintf "n=%d: zero-distance set is the legitimate set" n)
        (Model.legitimate_count tb)
        !zeros)
    [ 3; 4; 5; 6 ]

let test_guest_k_pinned_bounds () =
  (* At the concrete guest's K = 8 the exact global bounds are pinned;
     the differential tests in test_adversary.ml compare concrete runs
     against these tables. *)
  List.iter
    (fun (n, best, worst) ->
      let tb = Model.analyze ~n ~k:8 in
      check_int (Printf.sprintf "n=%d K=8: best bound" n) best
        (Model.best_bound tb);
      check_int (Printf.sprintf "n=%d K=8: worst bound" n) worst
        (Model.worst_bound tb))
    [ (3, 1, 2); (4, 2, 13); (5, 3, 24); (6, 4, 38) ]

let test_divergence_detected_below_k_min () =
  (* Dijkstra's ring stabilizes under the unfair central daemon iff
     K >= n - 1.  The checker must detect (not assume) both sides. *)
  check_int "n=4 K=3 (= n-1) stabilizes" 0
    (Model.divergent (Model.analyze ~n:4 ~k:3));
  check_int "n=5 K=4 (= n-1) stabilizes" 0
    (Model.divergent (Model.analyze ~n:5 ~k:4));
  check_int "n=4 K=2 diverges (8 configs)" 8
    (Model.divergent (Model.analyze ~n:4 ~k:2));
  check_int "n=5 K=3 diverges (27 configs)" 27
    (Model.divergent (Model.analyze ~n:5 ~k:3));
  (* A divergent configuration reports -1 through worst_of. *)
  let tb = Model.analyze ~n:4 ~k:2 in
  let found = ref None in
  for idx = 0 to tb.Model.model.Model.size - 1 do
    if tb.Model.worst.(idx) = -1 && !found = None then found := Some idx
  done;
  match !found with
  | None -> Alcotest.fail "no divergent configuration found"
  | Some idx ->
    check_int "worst_of reports divergence as -1" (-1)
      (Model.worst_of tb (Model.decode tb.Model.model idx))

(* Independent re-solution of both daemons, by different algorithms
   than the library's (forward BFS per configuration for the best case;
   Bellman value iteration for the worst case), compared exhaustively
   on a small shape. *)
let test_brute_force_cross_check () =
  let n = 3 and k = 4 in
  let tb = Model.analyze ~n ~k in
  let m = tb.Model.model in
  let size = m.Model.size in
  let successors idx =
    let config = Model.decode m idx in
    List.map
      (fun i ->
        let next = Array.copy config in
        Model.fire m next i;
        Model.encode m next)
      (Model.enabled_nodes m config)
  in
  (* Best: per-config forward BFS to the legitimate set. *)
  let bfs_best start =
    if Model.legitimate m (Model.decode m start) then 0
    else begin
      let dist = Array.make size (-1) in
      dist.(start) <- 0;
      let q = Queue.create () in
      Queue.add start q;
      let answer = ref (-1) in
      while !answer = -1 && not (Queue.is_empty q) do
        let u = Queue.pop q in
        List.iter
          (fun v ->
            if !answer = -1 && dist.(v) = -1 then begin
              dist.(v) <- dist.(u) + 1;
              if Model.legitimate m (Model.decode m v) then
                answer := dist.(v)
              else Queue.add v q
            end)
          (successors u)
      done;
      !answer
    end
  in
  (* Worst: value iteration.  Start every non-legitimate config at
     "unresolved"; a config resolves to 1 + max successor once all its
     successors have resolved; iterate to fixpoint (at most [size]
     rounds), leftovers are divergent. *)
  let worst = Array.make size (-1) in
  for idx = 0 to size - 1 do
    if Model.legitimate m (Model.decode m idx) then worst.(idx) <- 0
  done;
  let changed = ref true in
  while !changed do
    changed := false;
    for idx = 0 to size - 1 do
      if worst.(idx) = -1 then begin
        let succ = successors idx in
        if List.for_all (fun v -> worst.(v) >= 0) succ then begin
          worst.(idx) <-
            1 + List.fold_left (fun acc v -> max acc worst.(v)) 0 succ;
          changed := true
        end
      end
    done
  done;
  for idx = 0 to size - 1 do
    if tb.Model.best.(idx) <> bfs_best idx then
      Alcotest.failf "config %d: best %d <> BFS %d" idx tb.Model.best.(idx)
        (bfs_best idx);
    if tb.Model.worst.(idx) <> worst.(idx) then
      Alcotest.failf "config %d: worst %d <> value iteration %d" idx
        tb.Model.worst.(idx) worst.(idx)
  done

let test_create_validation () =
  let invalid f = match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  check_bool "n < 2 rejected" true (invalid (fun () -> Model.create ~n:1 ~k:4));
  check_bool "k < 2 rejected" true (invalid (fun () -> Model.create ~n:3 ~k:1));
  check_bool "k^n over the cap rejected" true
    (invalid (fun () -> Model.create ~n:9 ~k:8))

let suite =
  [ case "encode/decode/clamp round-trips" test_encode_decode_roundtrip;
    case "hand checks at n=3 K=4" test_hand_checks_n3_k4;
    case "exhaustive grid n=3..6 at K=n+1" test_grid_k_n_plus_one;
    case "pinned exact bounds at the guest K=8" test_guest_k_pinned_bounds;
    case "divergence detected below K = n-1" test_divergence_detected_below_k_min;
    case "brute-force cross-check (BFS + value iteration)"
      test_brute_force_cross_check;
    case "create validates its shape" test_create_validation ]
