let case = Helpers.case
let check_int = Helpers.check_int

let roundtrip instr =
  let bytes = Ssx.Codec.encode instr in
  let code = String.init (List.length bytes) (fun i -> Char.chr (List.nth bytes i)) in
  let decoded, len = Ssx.Codec.decode_bytes code ~pos:0 in
  (decoded, len, List.length bytes)

let check_roundtrip instr =
  let decoded, len, encoded_len = roundtrip instr in
  if not (Ssx.Instruction.equal decoded instr) then
    Alcotest.failf "roundtrip: %a became %a" Ssx.Instruction.pp instr
      Ssx.Instruction.pp decoded;
  check_int "length" encoded_len len

let sample_mem =
  { Ssx.Instruction.seg_override = Some Ssx.Registers.SS;
    base = Ssx.Instruction.Base_bx;
    disp = 0x0102 }

let plain_mem =
  { Ssx.Instruction.seg_override = None;
    base = Ssx.Instruction.No_base;
    disp = 0xFFFE }

let representative_instructions =
  let open Ssx.Instruction in
  let module R = Ssx.Registers in
  [ Mov_r16_imm (R.AX, 0xF000); Mov_r8_imm (R.AH, 26);
    Mov_r16_r16 (R.BX, R.SP); Mov_sreg_r16 (R.SS, R.AX);
    Mov_r16_sreg (R.CX, R.DS); Mov_r16_mem (R.AX, sample_mem);
    Mov_mem_r16 (plain_mem, R.DI); Mov_mem_imm (sample_mem, 0x0002);
    Mov_r8_mem (R.AL, plain_mem); Mov_mem_r8 (sample_mem, R.BH);
    Mov_sreg_mem (R.ES, sample_mem); Mov_mem_sreg (plain_mem, R.GS);
    Lea (R.BX, plain_mem); Xchg (R.AX, R.DX);
    Alu_r16_r16 (Add, R.AX, R.BX); Alu_r16_imm (And, R.AX, 0x0003);
    Alu_r16_mem (Cmp, R.AX, sample_mem); Alu_mem_r16 (Add, plain_mem, R.SI);
    Alu_r8_r8 (Xor, R.AL, R.AH); Alu_r8_imm (Or, R.CL, 0x80);
    Inc_r16 R.AX; Dec_r16 R.DI; Neg_r16 R.DX; Not_r16 R.BX;
    Shl_r16 (R.SI, 12); Shr_r16 (R.AX, 1);
    Mul_r8 R.AH; Mul_r16 R.CX; Div_r8 R.BL; Div_r16 R.SI;
    Push_r16 R.BP; Push_imm 0x0002; Push_sreg R.CS;
    Pop_r16 R.AX; Pop_sreg R.DS; Pushf; Popf;
    Jmp 0x0200; Jmp_far (0x1000, 0x0000); Jcc (B, 0x0042); Jcc (NE, 0x1234);
    Call 0x0100; Ret; Iret; Int 0x21; Loop 0x0010;
    Movs Byte; Movs Word_; Stos Byte; Stos Word_; Lods Byte; Lods Word_;
    Rep (Movs Byte); Rep (Stos Word_);
    In_ (Byte, 0x10); In_ (Word_, 0x12); Out (0x10, Byte); Out (0x12, Word_);
    In_dx Byte; In_dx Word_; Out_dx Byte; Out_dx Word_;
    Hlt; Nop; Cli; Sti; Cld; Std; Clc; Stc ]

let test_roundtrip_representative () =
  List.iter check_roundtrip representative_instructions

let test_all_conditions () =
  List.iter
    (fun c -> check_roundtrip (Ssx.Instruction.Jcc (c, 0xBEEF)))
    Ssx.Instruction.all_conds

let test_invalid_bytes () =
  (* Bytes outside the opcode map decode to Invalid of length one. *)
  List.iter
    (fun b ->
      let decoded, len = Ssx.Codec.decode_bytes (String.make 1 (Char.chr b)) ~pos:0 in
      check_int "length one" 1 len;
      match decoded with
      | Ssx.Instruction.Invalid b' -> check_int "byte preserved" b b'
      | other ->
        Alcotest.failf "0x%02X decoded to %a" b Ssx.Instruction.pp other)
    [ 0x00; 0x0F; 0x19; 0x3F; 0x56; 0x6F; 0x78; 0xFF ]

let test_rep_requires_string_op () =
  (* A rep prefix before a non-string instruction is not an instruction. *)
  let decoded, len = Ssx.Codec.decode_bytes "\x66\x70" ~pos:0 in
  check_int "length one" 1 len;
  match decoded with
  | Ssx.Instruction.Invalid 0x66 -> ()
  | other -> Alcotest.failf "decoded to %a" Ssx.Instruction.pp other

let test_nop_aliases () =
  let decoded, _ = Ssx.Codec.decode_bytes "\x90" ~pos:0 in
  Alcotest.(check bool) "0x90 is nop" true (decoded = Ssx.Instruction.Nop)

let test_lengths_bounded () =
  List.iter
    (fun instr ->
      let len = Ssx.Codec.encoded_length instr in
      Alcotest.(check bool) "within bound" true (len >= 1 && len <= Ssx.Codec.max_length))
    representative_instructions

let test_variable_length () =
  (* The mis-decode hazard of section 5.2 requires genuinely variable
     instruction lengths. *)
  let lengths =
    List.sort_uniq compare
      (List.map Ssx.Codec.encoded_length representative_instructions)
  in
  Alcotest.(check bool) "at least four distinct lengths" true
    (List.length lengths >= 4)

(* Random-instruction generator for the roundtrip property. *)
let gen_instruction =
  let open QCheck.Gen in
  let reg16 = oneofl Ssx.Registers.all_reg16 in
  let reg8 = oneofl Ssx.Registers.all_reg8 in
  let sreg = oneofl Ssx.Registers.all_sreg in
  let word = map (fun v -> v land 0xffff) int in
  let byte = map (fun v -> v land 0xff) int in
  let base =
    oneofl
      [ Ssx.Instruction.No_base; Ssx.Instruction.Base_bx;
        Ssx.Instruction.Base_si; Ssx.Instruction.Base_di;
        Ssx.Instruction.Base_bp; Ssx.Instruction.Base_bx_si;
        Ssx.Instruction.Base_bx_di ]
  in
  let mem =
    map3
      (fun seg_override base disp -> { Ssx.Instruction.seg_override; base; disp })
      (opt sreg) base word
  in
  let alu =
    oneofl
      [ Ssx.Instruction.Add; Ssx.Instruction.Adc; Ssx.Instruction.Sub;
        Ssx.Instruction.Sbb; Ssx.Instruction.And; Ssx.Instruction.Or;
        Ssx.Instruction.Xor; Ssx.Instruction.Cmp; Ssx.Instruction.Test ]
  in
  let width = oneofl [ Ssx.Instruction.Byte; Ssx.Instruction.Word_ ] in
  oneof
    [ map2 (fun r v -> Ssx.Instruction.Mov_r16_imm (r, v)) reg16 word;
      map2 (fun r v -> Ssx.Instruction.Mov_r8_imm (r, v)) reg8 byte;
      map2 (fun a b -> Ssx.Instruction.Mov_r16_r16 (a, b)) reg16 reg16;
      map2 (fun s r -> Ssx.Instruction.Mov_sreg_r16 (s, r)) sreg reg16;
      map2 (fun r m -> Ssx.Instruction.Mov_r16_mem (r, m)) reg16 mem;
      map2 (fun m r -> Ssx.Instruction.Mov_mem_r16 (m, r)) mem reg16;
      map2 (fun m v -> Ssx.Instruction.Mov_mem_imm (m, v)) mem word;
      map2 (fun s m -> Ssx.Instruction.Mov_sreg_mem (s, m)) sreg mem;
      map2 (fun m s -> Ssx.Instruction.Mov_mem_sreg (m, s)) mem sreg;
      map2 (fun r m -> Ssx.Instruction.Lea (r, m)) reg16 mem;
      map3 (fun op a b -> Ssx.Instruction.Alu_r16_r16 (op, a, b)) alu reg16 reg16;
      map3 (fun op r v -> Ssx.Instruction.Alu_r16_imm (op, r, v)) alu reg16 word;
      map3 (fun op r m -> Ssx.Instruction.Alu_r16_mem (op, r, m)) alu reg16 mem;
      map3 (fun op m r -> Ssx.Instruction.Alu_mem_r16 (op, m, r)) alu mem reg16;
      map (fun r -> Ssx.Instruction.Inc_r16 r) reg16;
      map (fun r -> Ssx.Instruction.Mul_r8 r) reg8;
      map (fun r -> Ssx.Instruction.Push_r16 r) reg16;
      map (fun v -> Ssx.Instruction.Push_imm v) word;
      map (fun t -> Ssx.Instruction.Jmp t) word;
      map2 (fun c t -> Ssx.Instruction.Jcc (c, t)) (oneofl Ssx.Instruction.all_conds) word;
      map (fun w -> Ssx.Instruction.Movs w) width;
      map (fun w -> Ssx.Instruction.Rep (Ssx.Instruction.Movs w)) width;
      map2 (fun w p -> Ssx.Instruction.In_ (w, p)) width byte;
      map2 (fun p w -> Ssx.Instruction.Out (p, w)) byte width;
      map (fun w -> Ssx.Instruction.In_dx w) width;
      map (fun w -> Ssx.Instruction.Out_dx w) width;
      return Ssx.Instruction.Iret; return Ssx.Instruction.Nop;
      return Ssx.Instruction.Hlt; return Ssx.Instruction.Cld ]

let arbitrary_instruction =
  QCheck.make ~print:Ssx.Instruction.to_string gen_instruction

let prop_roundtrip =
  QCheck.Test.make ~count:500 ~name:"encode/decode roundtrip"
    arbitrary_instruction (fun instr ->
      let decoded, len, encoded_len = roundtrip instr in
      Ssx.Instruction.equal decoded instr && len = encoded_len)

let prop_decode_total =
  QCheck.Test.make ~count:500 ~name:"decoding arbitrary bytes never fails"
    QCheck.(string_of_size (Gen.return 8))
    (fun code ->
      if String.length code < 8 then true
      else begin
        let _, len = Ssx.Codec.decode_bytes (code ^ String.make 8 '\000') ~pos:0 in
        len >= 1 && len <= Ssx.Codec.max_length
      end)

(* Exhaustive first-byte coverage: every opcode byte 0x00–0xFF either
   decodes to a real instruction or to the documented [Invalid]
   behaviour (length one, byte preserved) — no silent fallthrough —
   and the decode agrees with lib/fuzz's independent reference
   decoder on instruction and length for every operand tail tried. *)

let documented_first_byte =
  let ranges =
    [ (0x01, 0x0E); (* mov / lea / xchg *)
      (0x10, 0x18); (* ALU with form byte *)
      (0x20, 0x29); (* inc dec neg not shl shr mul div *)
      (0x30, 0x36); (* push / pop / pushf / popf *)
      (0x40, 0x46); (* jmp / call / ret / iret / int / loop *)
      (0x48, 0x55); (* conditional jumps *)
      (0x60, 0x6E); (* string ops, rep, port I/O *)
      (0x70, 0x77); (* nop hlt cli sti cld std clc stc *)
      (0x90, 0x90) (* nop alias *) ]
  in
  fun b -> List.exists (fun (lo, hi) -> b >= lo && b <= hi) ranges

let operand_tails =
  [ String.make 8 '\x00';
    String.make 8 '\xff';
    "\x01\x23\x45\x67\x89\xab\xcd\xef";
    String.make 8 '\x60';
    (* rep bodies *)
    "\x05\x04\x03\x02\x01\x00\x07\x06" ]

let test_first_byte_exhaustive () =
  for b0 = 0 to 0xFF do
    let decoded_valid = ref false in
    List.iter
      (fun tail ->
        let code = String.make 1 (Char.chr b0) ^ tail in
        let instr, len = Ssx.Codec.decode_bytes code ~pos:0 in
        let oracle, oracle_len =
          Ssx_fuzz.Ref_interp.decode_bytes code ~pos:0
        in
        if not (Ssx.Instruction.equal instr oracle) then
          Alcotest.failf "0x%02X: machine %a, oracle %a" b0
            Ssx.Instruction.pp instr Ssx.Instruction.pp oracle;
        if len <> oracle_len then
          Alcotest.failf "0x%02X: machine length %d, oracle length %d" b0
            len oracle_len;
        match instr with
        | Ssx.Instruction.Invalid b' ->
            check_int "invalid length one" 1 len;
            check_int "invalid byte preserved" b0 b'
        | _ -> decoded_valid := true)
      operand_tails;
    if !decoded_valid && not (documented_first_byte b0) then
      Alcotest.failf "undocumented byte 0x%02X decoded to an instruction" b0;
    if (not !decoded_valid) && documented_first_byte b0 then
      Alcotest.failf "documented byte 0x%02X never decoded" b0
  done

let test_rep_prefix_run_terminates () =
  (* Regression: the decoder used to recurse once per 0x66 prefix
     byte, which never bottomed out on a wrapping code segment made
     entirely of prefixes.  The fetch below models exactly that
     segment; decode must return the one-byte Invalid immediately. *)
  let instr, len = Ssx.Codec.decode ~fetch:(fun _ -> 0x66) ~pos:0 in
  check_int "length one" 1 len;
  match instr with
  | Ssx.Instruction.Invalid 0x66 -> ()
  | other -> Alcotest.failf "decoded to %a" Ssx.Instruction.pp other

let suite =
  [ case "roundtrip representative instructions" test_roundtrip_representative;
    case "all conditional jumps" test_all_conditions;
    case "invalid bytes decode to Invalid" test_invalid_bytes;
    case "rep requires a string op" test_rep_requires_string_op;
    case "0x90 is an alias for nop" test_nop_aliases;
    case "encoded lengths bounded" test_lengths_bounded;
    case "encoding is variable-length" test_variable_length;
    case "first byte exhaustive vs oracle decoder" test_first_byte_exhaustive;
    case "a run of rep prefixes terminates decode"
      test_rep_prefix_run_terminates ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_roundtrip; prop_decode_total ]
