let case = Helpers.case
let check_int = Helpers.check_int
let check_bool = Helpers.check_bool

let test_table_pp_alignment () =
  let table =
    { Ssos_experiments.Table.id = "TX";
      title = "demo";
      note = "note";
      header = [ "a"; "long-header"; "c" ];
      rows = [ [ "1"; "2"; "3" ]; [ "wide-cell"; "4" ] ] }
  in
  let rendered = Format.asprintf "%a" Ssos_experiments.Table.pp table in
  check_bool "contains title" true (Astring_contains.contains rendered "TX: demo");
  check_bool "contains separator" true (Astring_contains.contains rendered "---");
  (* Column widths: each data line is as wide as the header line. *)
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' rendered)
  in
  check_bool "several lines" true (List.length lines >= 5)

let test_cells () =
  Helpers.check_string "rate" "3/4 (75%)" (Ssos_experiments.Table.cell_rate 3 4);
  Helpers.check_string "rate zero denominator" "-" (Ssos_experiments.Table.cell_rate 0 0);
  Helpers.check_string "float" "1.5" (Ssos_experiments.Table.cell_float 1.5);
  Helpers.check_string "opt none" "-" (Ssos_experiments.Table.cell_opt_float None);
  Helpers.check_string "int" "42" (Ssos_experiments.Table.cell_int 42)

let test_to_json () =
  let table =
    { Ssos_experiments.Table.id = "TX";
      title = "quote \" and backslash \\";
      note = "line\nbreak";
      header = [ "a"; "b" ];
      rows = [ [ "1"; "2" ]; [ "3" ] ] }
  in
  let json = Ssos_experiments.Table.to_json table in
  check_bool "escapes quotes" true
    (Astring_contains.contains json "quote \\\" and backslash \\\\");
  check_bool "escapes newlines" true
    (Astring_contains.contains json "line\\nbreak");
  check_bool "has id field" true
    (Astring_contains.contains json "\"id\": \"TX\"");
  check_bool "has rows" true
    (Astring_contains.contains json "[\"1\",\"2\"]");
  (* Same table, same JSON: rendering is deterministic, so tables can
     be diffed mechanically as strings. *)
  Helpers.check_string "deterministic" json
    (Ssos_experiments.Table.to_json table)

let test_registry () =
  check_int "twenty tables" 20 (List.length Ssos_experiments.Experiments.all);
  check_bool "find t1" true (Ssos_experiments.Experiments.find "t1" <> None);
  check_bool "find T13" true (Ssos_experiments.Experiments.find "T13" <> None);
  check_bool "find t20" true (Ssos_experiments.Experiments.find "t20" <> None);
  check_bool "unknown" true (Ssos_experiments.Experiments.find "T99" = None)

let test_summarize () =
  let outcomes =
    [ { Ssos_experiments.Runner.recovered = true; recovery_ticks = Some 100 };
      { Ssos_experiments.Runner.recovered = true; recovery_ticks = Some 300 };
      { Ssos_experiments.Runner.recovered = false; recovery_ticks = None } ]
  in
  let s = Ssos_experiments.Runner.summarize outcomes in
  check_int "trials" 3 s.Ssos_experiments.Runner.trials;
  check_int "recoveries" 2 s.Ssos_experiments.Runner.recoveries;
  (match s.Ssos_experiments.Runner.mean_recovery with
  | Some mean -> check_bool "mean is 200" true (abs_float (mean -. 200.0) < 0.01)
  | None -> Alcotest.fail "mean expected");
  check_bool "max is 300" true (s.Ssos_experiments.Runner.max_recovery = Some 300)

let test_trial_seeds_distinct () =
  (* Pairwise distinct over a campaign-sized index range, and not
     merely distinct but unrelated across nearby masters (the old
     additive derivation collided across masters differing by the
     stride). *)
  let n = 10_000 in
  let seeds = List.init n (Ssos_experiments.Runner.trial_seed 7L) in
  check_int "distinct" n (List.length (List.sort_uniq compare seeds));
  let nearby = List.init n (Ssos_experiments.Runner.trial_seed 8L) in
  check_int "distinct across masters" (2 * n)
    (List.length (List.sort_uniq compare (seeds @ nearby)))

let test_small_t9_runs () =
  (* The cheapest full experiment must execute end-to-end. *)
  let table = Ssos_experiments.Experiments.t9_weak_vs_strict () in
  check_int "four designs" 4 (List.length table.Ssos_experiments.Table.rows);
  match table.Ssos_experiments.Table.rows with
  | [ restart; _; monitor; tiny ] ->
    check_bool "restart is weak only" true (List.mem "weak only" restart);
    check_bool "monitor is strong" true (List.mem "strong" monitor);
    check_bool "tiny OS is strong" true (List.mem "strong" tiny)
  | _ -> Alcotest.fail "unexpected rows"

let test_heartbeat_campaign_runs () =
  let summary =
    Ssos_experiments.Runner.heartbeat_campaign
      ~build:(fun () -> Ssos.Reinstall.build ())
      ~space:Ssos.System.ram_only_fault_space
      ~spec:(Ssos.Reinstall.weak_spec ())
      ~burst:10 ~warmup:10_000 ~horizon:150_000 ~trials:3 ~seed:5L ()
  in
  check_int "three trials" 3 summary.Ssos_experiments.Runner.trials;
  check_bool "all recovered" true (summary.Ssos_experiments.Runner.recoveries = 3)

let suite =
  [ case "table pretty-printing" test_table_pp_alignment;
    case "cell formatting" test_cells;
    case "table to_json" test_to_json;
    case "experiment registry" test_registry;
    case "summarize outcomes" test_summarize;
    case "trial seeds are distinct" test_trial_seeds_distinct;
    case "t9 runs end-to-end" test_small_t9_runs;
    case "heartbeat campaigns run" test_heartbeat_campaign_runs ]
