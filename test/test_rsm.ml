(* lib/rsm — the self-stabilizing replicated key-value service: clean
   traffic linearizes, the protocol reconverges from arbitrary replica
   state, the judge is not vacuous, snapshots round-trip mid-protocol,
   and the acceptance matrix (seeds x drop rates, with machine faults)
   recovers and serves. *)

let case = Helpers.case
let check_int = Helpers.check_int
let check_bool = Helpers.check_bool

module Service = Ssos_rsm.Service
module Workload = Ssos_rsm.Workload
module Wire = Ssos_rsm.Wire
module Cluster = Ssos_net.Cluster
module Distributed = Ssx_stab.Distributed
module Convergence = Ssx_stab.Convergence
module Rng = Ssx_faults.Rng
module Runner = Ssos_experiments.Runner

let corrupt_everything rng (service : Service.t) =
  for i = 0 to service.Service.n - 1 do
    Service.corrupt_state service i (Rng.int rng 0x10000);
    Service.corrupt_view service i (Rng.int rng 0x10000);
    for k = 0 to Wire.keys - 1 do
      Service.corrupt_kv service i k (Rng.int rng 0x10000);
      Service.corrupt_tag service i k (Rng.int rng 0x10000)
    done
  done

(* --- clean traffic --------------------------------------------------- *)

let test_clean_traffic_linearizes () =
  let service = Service.build ~n:5 ~obs:false ~seed:3L () in
  Cluster.run service.Service.cluster ~steps:400;
  check_bool "warmed-up service is legitimate" true (Service.legitimate service);
  let schedule = Workload.schedule ~rate:0.08 ~n:5 ~slots:80 ~seed:5L () in
  let w = Workload.create service schedule in
  let init = Array.copy (Service.kv service 0) in
  Workload.run w ~steps:2_000;
  check_bool "requests injected" true (Workload.injected w > 0);
  check_int "nothing dropped at the client NICs" 0 (Workload.dropped w);
  check_int "every accepted request commits" (Workload.injected w)
    (Workload.matched w);
  check_bool "responses linearize against the pre-serve store" true
    (Distributed.linearizable ~init ~ops:(Workload.ops w) = None);
  (* And the serve phase left the replicas coherent again. *)
  check_bool "stores coherent after serving" true
    (Distributed.coherent ~kvs:(Service.kvs service))

(* --- convergence from arbitrary state -------------------------------- *)

let test_converges_from_arbitrary_state () =
  List.iter
    (fun seed ->
      let service =
        Service.build ~n:5 ~obs:false ~seed:(Rng.derive seed 1) ()
      in
      Cluster.run service.Service.cluster ~steps:400;
      let rng = Rng.create (Rng.derive seed 2) in
      corrupt_everything rng service;
      let faults_end = Cluster.steps service.Service.cluster in
      let samples = Service.observe service ~steps:2_500 in
      let verdict =
        Distributed.rsm_judge ~window:400 ~samples
          ~end_step:(Cluster.steps service.Service.cluster)
      in
      let label = Printf.sprintf "seed %Ld" seed in
      check_bool (label ^ ": converged") true (Convergence.converged verdict);
      match Convergence.recovery_time ~faults_end verdict with
      | Some t -> check_bool (label ^ ": recovery time sane") true (t >= 0)
      | None -> Alcotest.failf "%s: no recovery time" label)
    [ 21L; 22L; 23L ]

(* --- the linearizability judge is not vacuous ------------------------- *)

let test_judge_rejects_stale_read () =
  let init = Array.make Wire.keys 0 in
  let put v = { Distributed.is_put = true; key = 0; value = v } in
  let get v = { Distributed.is_put = false; key = 0; value = v } in
  check_bool "fresh read accepted" true
    (Distributed.linearizable ~init ~ops:[ put 5; get 5 ] = None);
  (* A get that returns the pre-put value after the put was served is a
     stale read; the judge must name the offending index. *)
  check_bool "stale read flagged at its index" true
    (Distributed.linearizable ~init ~ops:[ put 5; get 0 ] = Some 1);
  check_bool "phantom write flagged" true
    (Distributed.linearizable ~init ~ops:[ get 9 ] = Some 0)

(* --- snapshot round-trip mid-protocol --------------------------------- *)

let test_snapshot_roundtrip_mid_protocol () =
  let service = Service.build ~n:5 ~obs:false ~seed:11L () in
  Cluster.run service.Service.cluster ~steps:400;
  (* Park the protocol mid-flight: dense traffic, stopped at an
     arbitrary step, with frames and responses still in the queues. *)
  let w0 =
    Workload.create service
      (Workload.schedule ~rate:0.2 ~n:5 ~slots:30 ~seed:12L ())
  in
  Workload.run w0 ~steps:137;
  let snapshot = Cluster.capture service.Service.cluster in
  let run_phase () =
    let w =
      Workload.create service
        (Workload.schedule ~rate:0.1 ~n:5 ~slots:60 ~seed:13L ())
    in
    Workload.discard w;
    Workload.run w ~steps:800;
    (Workload.responses w, Cluster.digest service.Service.cluster)
  in
  let responses1, digest1 = run_phase () in
  check_bool "mid-protocol phase served something" true (responses1 <> []);
  Cluster.restore service.Service.cluster snapshot;
  let responses2, digest2 = run_phase () in
  check_bool "responses identical after restore" true
    (responses1 = responses2);
  check_bool "digest identical after restore" true (digest1 = digest2)

(* --- acceptance: seeds x drop rates, with machine faults -------------- *)

let test_recovers_and_serves_under_faults () =
  List.iter
    (fun (seed, drop) ->
      let build () =
        Service.build ~n:5 ~obs:false
          ~faults:(fun ~src:_ ~dst:_ ->
            Ssos_net.Link.lossy ~drop ~max_delay:1 ())
          ~seed:(Rng.derive seed 7) ()
      in
      let perturb rng (service : Service.t) =
        (* Four machine faults from the full 5.2 soft-state space,
           spread over random replicas, on top of joint state
           corruption — the T17 fault model in miniature. *)
        for _ = 1 to 4 do
          let i = Rng.int rng service.Service.n in
          let sched = service.Service.systems.(i) in
          ignore
            (Ssx_faults.Fault.apply
               (Ssos.Sched.fault_system sched)
               (Ssx_faults.Fault.random rng (Ssos.Sched.fault_space sched)))
        done;
        corrupt_everything rng service
      in
      let outcome =
        Runner.rsm_trial ~build ~perturb ~warmup:400 ~horizon:2_500
          ~window:400 ~rate:0.05 ~serve_steps:1_200 ~seed:(Rng.derive seed 8)
          ()
      in
      let label = Printf.sprintf "seed %Ld drop %.0f%%" seed (100. *. drop) in
      check_bool (label ^ ": recovered") true
        outcome.Runner.base.Runner.recovered;
      check_bool (label ^ ": committed traffic") true
        (outcome.Runner.committed > 0);
      check_bool (label ^ ": linearizable") true outcome.Runner.linearizable)
    [ (101L, 0.0); (102L, 0.15); (103L, 0.3);
      (104L, 0.0); (105L, 0.15); (106L, 0.3);
      (107L, 0.0); (108L, 0.15); (109L, 0.3) ]

let suite =
  [ case "clean traffic commits and linearizes" test_clean_traffic_linearizes;
    case "converges from arbitrary replica state"
      test_converges_from_arbitrary_state;
    case "linearizability judge rejects stale reads"
      test_judge_rejects_stale_read;
    case "snapshot round-trip mid-protocol"
      test_snapshot_roundtrip_mid_protocol;
    case "acceptance: recovery and linearizable serving under faults"
      test_recovers_and_serves_under_faults ]
