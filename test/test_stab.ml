let case = Helpers.case
let check_int = Helpers.check_int
let check_bool = Helpers.check_bool

let sample tick value = { Ssx_devices.Heartbeat.tick; value }

let spec = Ssx_stab.Convergence.counter_spec ~max_gap:100 ~window:500 ()

let judge samples end_tick =
  Ssx_stab.Convergence.judge ~spec ~samples ~end_tick

(* ------------------------- predicates ------------------------- *)

let machine_for_predicates () =
  let machine, _ = Helpers.machine_with "spin:\n    jmp spin\n" in
  machine

let test_word_in_range () =
  let machine = machine_for_predicates () in
  let mem = Ssx.Machine.memory machine in
  let p =
    Ssx_stab.Predicate.word_in_range ~name:"idx" ~addr:0x5000 ~lo:0 ~hi:3 ~reset:0
  in
  Ssx.Memory.write_word mem 0x5000 2;
  check_bool "in range" true (p.Ssx_stab.Predicate.holds machine);
  Ssx.Memory.write_word mem 0x5000 9;
  check_bool "out of range" false (p.Ssx_stab.Predicate.holds machine);
  (match p.Ssx_stab.Predicate.repair with
  | Some fix -> fix machine
  | None -> Alcotest.fail "repair expected");
  check_int "repaired to reset value" 0 (Ssx.Memory.read_word mem 0x5000)

let test_checksum_predicate () =
  let machine = machine_for_predicates () in
  let mem = Ssx.Machine.memory machine in
  Ssx.Memory.load_image mem ~base:0x6000 "data!";
  let expected = Ssx_stab.Predicate.compute_checksum mem ~base:0x6000 ~len:5 in
  Ssx.Memory.write_word mem 0x6100 expected;
  let p = Ssx_stab.Predicate.checksum ~name:"sum" ~base:0x6000 ~len:5 ~sum_addr:0x6100 in
  check_bool "valid" true (p.Ssx_stab.Predicate.holds machine);
  Ssx.Memory.write_byte mem 0x6002 0xFF;
  check_bool "detects change" false (p.Ssx_stab.Predicate.holds machine)

let test_conj_and_check_and_repair () =
  let machine = machine_for_predicates () in
  let mem = Ssx.Machine.memory machine in
  let p1 = Ssx_stab.Predicate.word_in_range ~name:"a" ~addr:0x5000 ~lo:0 ~hi:1 ~reset:0 in
  let p2 = Ssx_stab.Predicate.word_in_range ~name:"b" ~addr:0x5002 ~lo:0 ~hi:1 ~reset:1 in
  Ssx.Memory.write_word mem 0x5000 7;
  Ssx.Memory.write_word mem 0x5002 1;
  let both = Ssx_stab.Predicate.conj ~name:"both" [ p1; p2 ] in
  check_bool "conj fails" false (both.Ssx_stab.Predicate.holds machine);
  let violated = Ssx_stab.Predicate.check_and_repair [ p1; p2 ] machine in
  check_int "one violation" 1 (List.length violated);
  check_bool "repaired" true (both.Ssx_stab.Predicate.holds machine);
  check_int "untouched predicate kept its value" 1 (Ssx.Memory.read_word mem 0x5002)

(* ------------------------- convergence ------------------------- *)

let test_judge_clean_run () =
  let samples = List.init 20 (fun i -> sample (i * 50) (i + 1)) in
  match judge samples 1000 with
  | Ssx_stab.Convergence.Converged { at_tick; _ } -> check_int "from start" 0 at_tick
  | v -> Alcotest.failf "unexpected: %a" Ssx_stab.Convergence.pp_verdict v

let test_judge_empty_trace () =
  check_bool "dead guest" false
    (Ssx_stab.Convergence.converged (judge [] 1000))

let test_judge_value_violation () =
  let samples =
    List.init 20 (fun i ->
        sample (i * 50) (if i < 5 then i + 1 else i + 100))
  in
  (* Violation at i=5 (jump), legal afterwards. *)
  match judge samples 1000 with
  | Ssx_stab.Convergence.Converged { at_tick; _ } -> check_int "after the jump" 250 at_tick
  | v -> Alcotest.failf "unexpected: %a" Ssx_stab.Convergence.pp_verdict v

let test_judge_gap_violation () =
  let samples = [ sample 0 1; sample 50 2; sample 400 3; sample 450 4; sample 1000 5 ] in
  (* Two gaps > 100: at tick 400 and at 1000; suffix from 1000 is empty. *)
  check_bool "not converged" false (Ssx_stab.Convergence.converged (judge samples 1000))

let test_judge_tail_gap () =
  (* The guest died at the end: last sample far from end_tick. *)
  let samples = List.init 5 (fun i -> sample (i * 50) (i + 1)) in
  check_bool "dead tail" false
    (Ssx_stab.Convergence.converged (judge samples 5000))

let test_judge_window () =
  let samples = List.init 20 (fun i -> sample (i * 50) (i + 1)) in
  (* Legal but shorter than the window. *)
  let short_spec = Ssx_stab.Convergence.counter_spec ~max_gap:100 ~window:5000 () in
  check_bool "window not met" false
    (Ssx_stab.Convergence.converged
       (Ssx_stab.Convergence.judge ~spec:short_spec ~samples ~end_tick:1000))

let test_recovery_time () =
  let samples =
    List.init 20 (fun i -> sample (i * 50) (if i = 5 then 99 else i + 1))
  in
  (* Violations at i=5 and i=6 (99 then back), last at tick 300. *)
  let verdict = judge samples 1000 in
  (match Ssx_stab.Convergence.recovery_time ~faults_end:100 verdict with
  | Some t -> check_int "recovery after faults" 200 t
  | None -> Alcotest.fail "expected recovery");
  match Ssx_stab.Convergence.recovery_time ~faults_end:100 (judge [] 1000) with
  | None -> ()
  | Some _ -> Alcotest.fail "no recovery for a dead trace"

let test_violation_count () =
  let samples =
    List.init 20 (fun i -> sample (i * 50) (if i mod 7 = 3 then 0 else i + 1))
  in
  let count = Ssx_stab.Convergence.violation_count ~spec ~samples ~end_tick:1000 in
  (* i=3,10,17 break the chain; each costs two violations (in and out). *)
  check_bool "several violations" true (count >= 3);
  let clean = List.init 20 (fun i -> sample (i * 50) (i + 1)) in
  check_int "clean run has none" 0
    (Ssx_stab.Convergence.violation_count ~spec ~samples:clean ~end_tick:1000)

let test_wrap_around_legal () =
  let samples = [ sample 0 0xFFFE; sample 50 0xFFFF; sample 100 0; sample 150 1 ] in
  check_int "wrap is legal" 0
    (Ssx_stab.Convergence.violation_count ~spec ~samples ~end_tick:200)

(* ------------------------- composition ------------------------- *)

let obs name t =
  { Ssx_stab.Composition.layer_name = name; stabilized_at = t }

let test_respects_layering () =
  check_bool "ordered" true
    (Ssx_stab.Composition.respects_layering
       [ obs "hw" (Some 10); obs "os" (Some 20); obs "app" (Some 20) ]);
  check_bool "inverted" false
    (Ssx_stab.Composition.respects_layering
       [ obs "hw" (Some 30); obs "os" (Some 20) ]);
  check_bool "upper never stabilized is fine" true
    (Ssx_stab.Composition.respects_layering [ obs "hw" (Some 10); obs "os" None ]);
  check_bool "lower never but upper did" false
    (Ssx_stab.Composition.respects_layering [ obs "hw" None; obs "os" (Some 5) ])

let test_observe () =
  let machine, _ = Helpers.machine_with "mov ax, 1\nspin:\n    jmp spin\n" in
  let layers =
    [ { Ssx_stab.Composition.name = "ax set";
        safe = (fun m -> (Helpers.regs m).Ssx.Registers.ax = 1) } ]
  in
  match Ssx_stab.Composition.observe machine ~layers ~ticks:100 with
  | [ { Ssx_stab.Composition.stabilized_at = Some t; _ } ] ->
    check_bool "stabilized soon after the mov" true (t <= 2)
  | _ -> Alcotest.fail "expected one observation"

let suite =
  [ case "word_in_range predicate" test_word_in_range;
    case "checksum predicate" test_checksum_predicate;
    case "conj and check_and_repair" test_conj_and_check_and_repair;
    case "judge: clean run converges from 0" test_judge_clean_run;
    case "judge: empty trace" test_judge_empty_trace;
    case "judge: value violation" test_judge_value_violation;
    case "judge: gap violation" test_judge_gap_violation;
    case "judge: dead tail" test_judge_tail_gap;
    case "judge: window must be met" test_judge_window;
    case "recovery time" test_recovery_time;
    case "violation counting" test_violation_count;
    case "counter wrap-around is legal" test_wrap_around_legal;
    case "respects_layering" test_respects_layering;
    case "observe layers" test_observe ]
