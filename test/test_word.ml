let check_int = Helpers.check_int
let case = Helpers.case

let test_mask () =
  check_int "wraps" 0x2345 (Ssx.Word.mask 0x12345);
  check_int "identity" 0xFFFF (Ssx.Word.mask 0xFFFF);
  check_int "negative" 0xFFFF (Ssx.Word.mask (-1));
  check_int "byte" 0x45 (Ssx.Word.mask8 0x12345)

let test_bytes () =
  check_int "low" 0x34 (Ssx.Word.low_byte 0x1234);
  check_int "high" 0x12 (Ssx.Word.high_byte 0x1234);
  check_int "combine" 0x1234 (Ssx.Word.of_bytes ~low:0x34 ~high:0x12);
  check_int "combine masks" 0x1234 (Ssx.Word.of_bytes ~low:0x7734 ~high:0x9912)

let test_signed () =
  check_int "positive" 5 (Ssx.Word.to_signed 5);
  check_int "minus one" (-1) (Ssx.Word.to_signed 0xFFFF);
  check_int "min" (-32768) (Ssx.Word.to_signed 0x8000);
  check_int "max" 32767 (Ssx.Word.to_signed 0x7FFF);
  Helpers.check_bool "sign bit" true (Ssx.Word.is_negative 0x8000);
  Helpers.check_bool "no sign bit" false (Ssx.Word.is_negative 0x7FFF)

let test_add () =
  let result, carry, overflow = Ssx.Word.add 1 2 in
  check_int "sum" 3 result;
  Helpers.check_bool "no carry" false carry;
  Helpers.check_bool "no overflow" false overflow;
  let result, carry, _ = Ssx.Word.add 0xFFFF 1 in
  check_int "wrap sum" 0 result;
  Helpers.check_bool "carry" true carry;
  let _, _, overflow = Ssx.Word.add 0x7FFF 1 in
  Helpers.check_bool "signed overflow" true overflow;
  let _, carry, overflow = Ssx.Word.add 0x8000 0x8000 in
  Helpers.check_bool "negative overflow carry" true carry;
  Helpers.check_bool "negative overflow" true overflow

let test_add_with_carry () =
  let result, carry, _ = Ssx.Word.add_with_carry 0xFFFF 0 ~carry:true in
  check_int "carry in wraps" 0 result;
  Helpers.check_bool "carry out" true carry;
  let result, _, _ = Ssx.Word.add_with_carry 1 2 ~carry:true in
  check_int "carry adds one" 4 result

let test_sub () =
  let result, borrow, _ = Ssx.Word.sub 5 3 in
  check_int "difference" 2 result;
  Helpers.check_bool "no borrow" false borrow;
  let result, borrow, _ = Ssx.Word.sub 3 5 in
  check_int "wrapped difference" 0xFFFE result;
  Helpers.check_bool "borrow" true borrow;
  let _, _, overflow = Ssx.Word.sub 0x8000 1 in
  Helpers.check_bool "signed overflow" true overflow

let test_sub_with_borrow () =
  let result, borrow, _ = Ssx.Word.sub_with_borrow 0 0 ~borrow:true in
  check_int "borrow in wraps" 0xFFFF result;
  Helpers.check_bool "borrow out" true borrow

let test_succ_pred () =
  check_int "succ wraps" 0 (Ssx.Word.succ 0xFFFF);
  check_int "pred wraps" 0xFFFF (Ssx.Word.pred 0);
  check_int "succ" 8 (Ssx.Word.succ 7)

let test_parity () =
  Helpers.check_bool "0 has even parity" true (Ssx.Word.parity_even 0);
  Helpers.check_bool "1 is odd" false (Ssx.Word.parity_even 1);
  Helpers.check_bool "3 is even" true (Ssx.Word.parity_even 3);
  Helpers.check_bool "only low byte counts" true (Ssx.Word.parity_even 0x100)

let test_pp () =
  Helpers.check_string "format" "0x00FF" (Format.asprintf "%a" Ssx.Word.pp 0xFF)

let word_gen = QCheck.map (fun v -> v land 0xffff) QCheck.int

let prop_mask_idempotent =
  QCheck.Test.make ~name:"mask is idempotent" QCheck.int (fun v ->
      Ssx.Word.mask (Ssx.Word.mask v) = Ssx.Word.mask v)

let prop_bytes_roundtrip =
  QCheck.Test.make ~name:"byte split/combine roundtrip" word_gen (fun w ->
      Ssx.Word.of_bytes ~low:(Ssx.Word.low_byte w) ~high:(Ssx.Word.high_byte w)
      = w)

let prop_add_commutative =
  QCheck.Test.make ~name:"add is commutative"
    (QCheck.pair word_gen word_gen)
    (fun (a, b) ->
      let r1, c1, _ = Ssx.Word.add a b and r2, c2, _ = Ssx.Word.add b a in
      r1 = r2 && c1 = c2)

let prop_sub_inverts_add =
  QCheck.Test.make ~name:"sub inverts add"
    (QCheck.pair word_gen word_gen)
    (fun (a, b) ->
      let sum, _, _ = Ssx.Word.add a b in
      let diff, _, _ = Ssx.Word.sub sum b in
      diff = a)

let prop_signed_range =
  QCheck.Test.make ~name:"to_signed stays in range" word_gen (fun w ->
      let s = Ssx.Word.to_signed w in
      s >= -32768 && s <= 32767 && Ssx.Word.mask s = w)

let suite =
  [ case "mask" test_mask;
    case "byte access" test_bytes;
    case "signed interpretation" test_signed;
    case "add with flags" test_add;
    case "add with carry" test_add_with_carry;
    case "sub with flags" test_sub;
    case "sub with borrow" test_sub_with_borrow;
    case "succ and pred wrap" test_succ_pred;
    case "parity" test_parity;
    case "pretty printing" test_pp ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_mask_idempotent; prop_bytes_roundtrip; prop_add_commutative;
        prop_sub_inverts_add; prop_signed_range ]
