let check_int = Helpers.check_int
let case = Helpers.case

let test_mask () =
  check_int "wraps" 0x2345 (Ssx.Word.mask 0x12345);
  check_int "identity" 0xFFFF (Ssx.Word.mask 0xFFFF);
  check_int "negative" 0xFFFF (Ssx.Word.mask (-1));
  check_int "byte" 0x45 (Ssx.Word.mask8 0x12345)

let test_bytes () =
  check_int "low" 0x34 (Ssx.Word.low_byte 0x1234);
  check_int "high" 0x12 (Ssx.Word.high_byte 0x1234);
  check_int "combine" 0x1234 (Ssx.Word.of_bytes ~low:0x34 ~high:0x12);
  check_int "combine masks" 0x1234 (Ssx.Word.of_bytes ~low:0x7734 ~high:0x9912)

let test_signed () =
  check_int "positive" 5 (Ssx.Word.to_signed 5);
  check_int "minus one" (-1) (Ssx.Word.to_signed 0xFFFF);
  check_int "min" (-32768) (Ssx.Word.to_signed 0x8000);
  check_int "max" 32767 (Ssx.Word.to_signed 0x7FFF);
  Helpers.check_bool "sign bit" true (Ssx.Word.is_negative 0x8000);
  Helpers.check_bool "no sign bit" false (Ssx.Word.is_negative 0x7FFF)

let test_add () =
  let result, carry, overflow = Ssx.Word.add 1 2 in
  check_int "sum" 3 result;
  Helpers.check_bool "no carry" false carry;
  Helpers.check_bool "no overflow" false overflow;
  let result, carry, _ = Ssx.Word.add 0xFFFF 1 in
  check_int "wrap sum" 0 result;
  Helpers.check_bool "carry" true carry;
  let _, _, overflow = Ssx.Word.add 0x7FFF 1 in
  Helpers.check_bool "signed overflow" true overflow;
  let _, carry, overflow = Ssx.Word.add 0x8000 0x8000 in
  Helpers.check_bool "negative overflow carry" true carry;
  Helpers.check_bool "negative overflow" true overflow

let test_add_with_carry () =
  let result, carry, _ = Ssx.Word.add_with_carry 0xFFFF 0 ~carry:true in
  check_int "carry in wraps" 0 result;
  Helpers.check_bool "carry out" true carry;
  let result, _, _ = Ssx.Word.add_with_carry 1 2 ~carry:true in
  check_int "carry adds one" 4 result

let test_sub () =
  let result, borrow, _ = Ssx.Word.sub 5 3 in
  check_int "difference" 2 result;
  Helpers.check_bool "no borrow" false borrow;
  let result, borrow, _ = Ssx.Word.sub 3 5 in
  check_int "wrapped difference" 0xFFFE result;
  Helpers.check_bool "borrow" true borrow;
  let _, _, overflow = Ssx.Word.sub 0x8000 1 in
  Helpers.check_bool "signed overflow" true overflow

let test_sub_with_borrow () =
  let result, borrow, _ = Ssx.Word.sub_with_borrow 0 0 ~borrow:true in
  check_int "borrow in wraps" 0xFFFF result;
  Helpers.check_bool "borrow out" true borrow

let test_succ_pred () =
  check_int "succ wraps" 0 (Ssx.Word.succ 0xFFFF);
  check_int "pred wraps" 0xFFFF (Ssx.Word.pred 0);
  check_int "succ" 8 (Ssx.Word.succ 7)

let test_parity () =
  Helpers.check_bool "0 has even parity" true (Ssx.Word.parity_even 0);
  Helpers.check_bool "1 is odd" false (Ssx.Word.parity_even 1);
  Helpers.check_bool "3 is even" true (Ssx.Word.parity_even 3);
  Helpers.check_bool "only low byte counts" true (Ssx.Word.parity_even 0x100)

let test_pp () =
  Helpers.check_string "format" "0x00FF" (Format.asprintf "%a" Ssx.Word.pp 0xFF)

(* --- Seeded randomized flag properties --------------------------------
   The packed ALU helpers — and the CPU's logic and shift paths built
   on top of them — are checked against a bit-serial reference: a
   ripple adder for carry/overflow, per-bit loops for logic, shifts one
   position at a time tracking the last bit shifted out. *)

module Rng = Ssx_faults.Rng

let cases_per_op = 200

let ripple_add a b ~carry_in =
  let result = ref 0 and carry = ref (if carry_in then 1 else 0) in
  let carry_into_msb = ref 0 in
  for i = 0 to 15 do
    if i = 15 then carry_into_msb := !carry;
    let s = ((a lsr i) land 1) + ((b lsr i) land 1) + !carry in
    result := !result lor ((s land 1) lsl i);
    carry := s lsr 1
  done;
  (!result, !carry = 1, !carry_into_msb <> !carry)

let ripple_sub a b ~borrow_in =
  let r, c, o = ripple_add a (lnot b land 0xFFFF) ~carry_in:(not borrow_in) in
  (r, not c, o)

let ref_parity_even v =
  let bits = ref 0 in
  for i = 0 to 7 do bits := !bits + ((v lsr i) land 1) done;
  !bits mod 2 = 0

let boundary = [| 0x0000; 0x0001; 0x7FFF; 0x8000; 0xFFFF |]

let rand_word rng =
  if Rng.int rng 4 = 0 then boundary.(Rng.int rng 5)
  else Rng.int rng 0x10000

let check_triple name i (r, c, o) (r', c', o') =
  if r <> r' || c <> c' || o <> o' then
    Alcotest.failf "%s case %d: got (0x%04X, %b, %b), reference (0x%04X, %b, %b)"
      name i r c o r' c' o'

let test_add_matches_reference () =
  let rng = Rng.create 101L in
  for i = 1 to cases_per_op do
    let a = rand_word rng and b = rand_word rng in
    let carry = Rng.bool rng in
    check_triple "add" i (Ssx.Word.add a b) (ripple_add a b ~carry_in:false);
    check_triple "adc" i
      (Ssx.Word.add_with_carry a b ~carry)
      (ripple_add a b ~carry_in:carry)
  done

let test_sub_matches_reference () =
  let rng = Rng.create 102L in
  for i = 1 to cases_per_op do
    let a = rand_word rng and b = rand_word rng in
    let borrow = Rng.bool rng in
    check_triple "sub" i (Ssx.Word.sub a b) (ripple_sub a b ~borrow_in:false);
    check_triple "sbb" i
      (Ssx.Word.sub_with_borrow a b ~borrow)
      (ripple_sub a b ~borrow_in:borrow)
  done

let test_parity_matches_reference () =
  let rng = Rng.create 103L in
  for _ = 1 to cases_per_op do
    let v = rand_word rng in
    Helpers.check_bool "parity" (ref_parity_even v) (Ssx.Word.parity_even v)
  done

(* One reused bare machine: poke the encoded instruction at cs:0 (the
   write invalidates any cached decode), set the inputs, tick once. *)
let alu_machine = lazy (Ssx.Machine.create ())

let exec_one instr ~ax ~cx ~psw =
  let machine = Lazy.force alu_machine in
  let mem = Ssx.Machine.memory machine in
  let bytes = Ssx.Codec.encode instr in
  List.iteri (fun i b -> Ssx.Memory.write_byte mem (0x10000 + i) b) bytes;
  let cpu = Ssx.Machine.cpu machine in
  let regs = cpu.Ssx.Cpu.regs in
  regs.Ssx.Registers.cs <- 0x1000;
  regs.Ssx.Registers.ip <- 0;
  regs.Ssx.Registers.ax <- ax;
  regs.Ssx.Registers.cx <- cx;
  regs.Ssx.Registers.psw <- psw;
  cpu.Ssx.Cpu.halted <- false;
  ignore (Ssx.Machine.tick machine);
  (regs.Ssx.Registers.ax, regs.Ssx.Registers.psw)

let check_flag name i psw flag expected =
  if Ssx.Flags.get psw flag <> expected then
    Alcotest.failf "%s case %d: flag %d expected %b in psw 0x%04X" name i
      (Ssx.Flags.bit flag) expected psw

let check_zsp name i psw result =
  check_flag name i psw Ssx.Flags.Zero (result = 0);
  check_flag name i psw Ssx.Flags.Sign (result land 0x8000 <> 0);
  check_flag name i psw Ssx.Flags.Parity (ref_parity_even result)

let test_logic_matches_reference () =
  let ops =
    [ ("and", Ssx.Instruction.And, ( land ));
      ("or", Ssx.Instruction.Or, ( lor ));
      ("xor", Ssx.Instruction.Xor, ( lxor )) ]
  in
  let rng = Rng.create 104L in
  List.iter
    (fun (name, op, bitf) ->
      for i = 1 to cases_per_op do
        let a = rand_word rng and b = rand_word rng in
        let psw = rand_word rng in
        let result, psw' =
          exec_one
            (Ssx.Instruction.Alu_r16_r16 (op, Ssx.Registers.AX,
                                          Ssx.Registers.CX))
            ~ax:a ~cx:b ~psw
        in
        let expected = ref 0 in
        for bit = 0 to 15 do
          let v = bitf ((a lsr bit) land 1) ((b lsr bit) land 1) in
          expected := !expected lor (v lsl bit)
        done;
        Helpers.check_int name !expected result;
        check_flag name i psw' Ssx.Flags.Carry false;
        check_flag name i psw' Ssx.Flags.Overflow false;
        check_zsp name i psw' result;
        (* non-arithmetic flags ride through untouched *)
        check_flag name i psw' Ssx.Flags.Interrupt
          (Ssx.Flags.get psw Ssx.Flags.Interrupt);
        check_flag name i psw' Ssx.Flags.Direction
          (Ssx.Flags.get psw Ssx.Flags.Direction)
      done)
    ops

let test_shifts_match_reference () =
  let rng = Rng.create 105L in
  List.iter
    (fun (name, make, step) ->
      for i = 1 to cases_per_op do
        let v = rand_word rng and n = Rng.int rng 16 in
        let psw = rand_word rng in
        let result, psw' = exec_one (make n) ~ax:v ~cx:0 ~psw in
        if n = 0 then begin
          (* a zero count is a no-op: value and every flag unchanged *)
          Helpers.check_int (name ^ " n=0 value") v result;
          Helpers.check_int (name ^ " n=0 psw") psw psw'
        end
        else begin
          let r = ref v and cf = ref false in
          for _ = 1 to n do
            let r', cf' = step !r in
            r := r';
            cf := cf'
          done;
          Helpers.check_int name !r result;
          check_flag name i psw' Ssx.Flags.Carry !cf;
          check_flag name i psw' Ssx.Flags.Overflow false;
          check_zsp name i psw' result
        end
      done)
    [ ("shl",
       (fun n -> Ssx.Instruction.Shl_r16 (Ssx.Registers.AX, n)),
       fun r -> ((r lsl 1) land 0xFFFF, (r lsr 15) land 1 = 1));
      ("shr",
       (fun n -> Ssx.Instruction.Shr_r16 (Ssx.Registers.AX, n)),
       fun r -> (r lsr 1, r land 1 = 1)) ]

let word_gen = QCheck.map (fun v -> v land 0xffff) QCheck.int

let prop_mask_idempotent =
  QCheck.Test.make ~name:"mask is idempotent" QCheck.int (fun v ->
      Ssx.Word.mask (Ssx.Word.mask v) = Ssx.Word.mask v)

let prop_bytes_roundtrip =
  QCheck.Test.make ~name:"byte split/combine roundtrip" word_gen (fun w ->
      Ssx.Word.of_bytes ~low:(Ssx.Word.low_byte w) ~high:(Ssx.Word.high_byte w)
      = w)

let prop_add_commutative =
  QCheck.Test.make ~name:"add is commutative"
    (QCheck.pair word_gen word_gen)
    (fun (a, b) ->
      let r1, c1, _ = Ssx.Word.add a b and r2, c2, _ = Ssx.Word.add b a in
      r1 = r2 && c1 = c2)

let prop_sub_inverts_add =
  QCheck.Test.make ~name:"sub inverts add"
    (QCheck.pair word_gen word_gen)
    (fun (a, b) ->
      let sum, _, _ = Ssx.Word.add a b in
      let diff, _, _ = Ssx.Word.sub sum b in
      diff = a)

let prop_signed_range =
  QCheck.Test.make ~name:"to_signed stays in range" word_gen (fun w ->
      let s = Ssx.Word.to_signed w in
      s >= -32768 && s <= 32767 && Ssx.Word.mask s = w)

let suite =
  [ case "mask" test_mask;
    case "byte access" test_bytes;
    case "signed interpretation" test_signed;
    case "add with flags" test_add;
    case "add with carry" test_add_with_carry;
    case "sub with flags" test_sub;
    case "sub with borrow" test_sub_with_borrow;
    case "succ and pred wrap" test_succ_pred;
    case "parity" test_parity;
    case "pretty printing" test_pp;
    case "add/adc match the ripple reference" test_add_matches_reference;
    case "sub/sbb match the ripple reference" test_sub_matches_reference;
    case "parity matches a popcount reference" test_parity_matches_reference;
    case "logic flags match the bit reference" test_logic_matches_reference;
    case "shift flags match the bit reference" test_shifts_match_reference ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_mask_idempotent; prop_bytes_roundtrip; prop_add_commutative;
        prop_sub_inverts_add; prop_signed_range ]
