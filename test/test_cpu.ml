let case = Helpers.case
let check_int = Helpers.check_int
let check_bool = Helpers.check_bool

let ax machine = (Helpers.regs machine).Ssx.Registers.ax
let bx machine = (Helpers.regs machine).Ssx.Registers.bx
let cx machine = (Helpers.regs machine).Ssx.Registers.cx
let dx machine = (Helpers.regs machine).Ssx.Registers.dx

let test_mov_imm () =
  let machine = Helpers.exec "mov ax, 0x1234\nmov bl, 0x56\nhlt\n" in
  check_int "ax" 0x1234 (ax machine);
  check_int "bl" 0x56 (Ssx.Registers.get8 (Helpers.regs machine) Ssx.Registers.BL)

let test_mov_memory () =
  let machine =
    Helpers.exec
      "mov ax, 0xBEEF\nmov [0x100], ax\nmov bx, [0x100]\n\
       mov cl, [0x100]\nmov ch, [0x101]\nhlt\n"
  in
  check_int "bx" 0xBEEF (bx machine);
  check_int "cx byte loads" 0xBEEF (cx machine)

let test_mov_base_disp () =
  let machine =
    Helpers.exec
      "mov bx, 0x200\nmov ax, 0x7777\nmov [bx+4], ax\nmov dx, [0x204]\nhlt\n"
  in
  check_int "dx" 0x7777 (dx machine)

let test_segment_override () =
  (* Writes through es must land in the es segment. *)
  let machine, _ =
    Helpers.machine_with
      "mov ax, 0x2000\nmov es, ax\nmov ax, 0xABCD\nmov [es:0x10], ax\nhlt\n"
  in
  Helpers.run_to_halt machine;
  check_int "landed at 0x20010" 0xABCD
    (Ssx.Memory.read_word (Ssx.Machine.memory machine) 0x20010)

let test_default_segment_bp () =
  (* A bp base defaults to the stack segment. *)
  let machine, _ =
    Helpers.machine_with
      "mov ax, 0x3000\nmov ss, ax\nmov bp, 0x20\nmov ax, 0x5A5A\n\
       mov [bp+2], ax\nhlt\n"
  in
  Helpers.run_to_halt machine;
  check_int "landed in ss" 0x5A5A
    (Ssx.Memory.read_word (Ssx.Machine.memory machine) 0x30022)

let test_add_flags () =
  let machine = Helpers.exec "mov ax, 0xFFFF\nadd ax, 1\nhlt\n" in
  check_int "wrapped" 0 (ax machine);
  check_bool "carry" true (Helpers.flag machine Ssx.Flags.Carry);
  check_bool "zero" true (Helpers.flag machine Ssx.Flags.Zero);
  let machine = Helpers.exec "mov ax, 0x7FFF\nadd ax, 1\nhlt\n" in
  check_bool "overflow" true (Helpers.flag machine Ssx.Flags.Overflow);
  check_bool "sign" true (Helpers.flag machine Ssx.Flags.Sign)

let test_sub_cmp_flags () =
  let machine = Helpers.exec "mov ax, 3\nsub ax, 5\nhlt\n" in
  check_int "wrapped" 0xFFFE (ax machine);
  check_bool "borrow sets carry" true (Helpers.flag machine Ssx.Flags.Carry);
  let machine = Helpers.exec "mov ax, 5\ncmp ax, 5\nhlt\n" in
  check_int "cmp preserves ax" 5 (ax machine);
  check_bool "equal sets zero" true (Helpers.flag machine Ssx.Flags.Zero)

let test_adc_sbb () =
  let machine = Helpers.exec "stc\nmov ax, 1\nadc ax, 1\nhlt\n" in
  check_int "adc adds carry" 3 (ax machine);
  let machine = Helpers.exec "stc\nmov ax, 5\nsbb ax, 1\nhlt\n" in
  check_int "sbb subtracts borrow" 3 (ax machine)

let test_logic () =
  let machine =
    Helpers.exec "mov ax, 0xF0F0\nand ax, 0x0FF0\nhlt\n"
  in
  check_int "and" 0x00F0 (ax machine);
  check_bool "logic clears carry" false (Helpers.flag machine Ssx.Flags.Carry);
  let machine = Helpers.exec "mov ax, 0xF0F0\nxor ax, 0xF0F0\nhlt\n" in
  check_bool "xor to zero" true (Helpers.flag machine Ssx.Flags.Zero)

let test_inc_dec_preserve_carry () =
  let machine = Helpers.exec "stc\nmov ax, 7\ninc ax\nhlt\n" in
  check_bool "inc keeps carry" true (Helpers.flag machine Ssx.Flags.Carry);
  check_int "inc" 8 (ax machine);
  let machine = Helpers.exec "mov ax, 1\ndec ax\nhlt\n" in
  check_bool "dec to zero" true (Helpers.flag machine Ssx.Flags.Zero)

let test_shifts () =
  let machine = Helpers.exec "mov ax, 1\nshl ax, 4\nhlt\n" in
  check_int "shl" 16 (ax machine);
  let machine = Helpers.exec "mov ax, 0x8000\nshl ax, 1\nhlt\n" in
  check_bool "shl carries out the msb" true (Helpers.flag machine Ssx.Flags.Carry);
  let machine = Helpers.exec "mov ax, 3\nshr ax, 1\nhlt\n" in
  check_int "shr" 1 (ax machine);
  check_bool "shr carries out the lsb" true (Helpers.flag machine Ssx.Flags.Carry)

let test_mul8 () =
  (* Figure 3 line 13: ax := al * ah. *)
  let machine = Helpers.exec "mov al, 3\nmov ah, 26\nmul ah\nhlt\n" in
  check_int "record offset" 78 (ax machine)

let test_mul16 () =
  let machine = Helpers.exec "mov ax, 0x1000\nmov cx, 0x10\nmul cx\nhlt\n" in
  check_int "low word" 0 (ax machine);
  check_int "high word" 1 (dx machine)

let test_div () =
  let machine = Helpers.exec "mov ax, 17\nmov cl, 5\ndiv cl\nhlt\n" in
  check_int "quotient in al" 3 (Ssx.Registers.get8 (Helpers.regs machine) Ssx.Registers.AL);
  check_int "remainder in ah" 2 (Ssx.Registers.get8 (Helpers.regs machine) Ssx.Registers.AH)

let test_divide_fault () =
  (* Division by zero vectors through IDT entry 0. *)
  let machine, _ =
    Helpers.machine_with "mov ax, 1\nmov cl, 0\ndiv cl\nhlt\n"
  in
  let cpu = Ssx.Machine.cpu machine in
  (* Handler at 0:0x40 (idtr = 0): point vector 0 there, put hlt there. *)
  let mem = Ssx.Machine.memory machine in
  Ssx.Memory.write_word mem 0 0x40;   (* offset *)
  Ssx.Memory.write_word mem 2 0x0500; (* segment *)
  Ssx.Memory.write_byte mem 0x5040 0x71; (* hlt *)
  Helpers.run_to_halt machine;
  check_int "jumped to the divide handler" 0x0500 cpu.Ssx.Cpu.regs.Ssx.Registers.cs

let test_stack () =
  let machine =
    Helpers.exec "mov ax, 0x1111\npush ax\nmov ax, 0x2222\npush ax\n\
                  pop bx\npop cx\nhlt\n"
  in
  check_int "lifo first" 0x2222 (bx machine);
  check_int "lifo second" 0x1111 (cx machine)

let test_pushf_popf () =
  let machine = Helpers.exec "stc\npushf\nclc\npopf\nhlt\n" in
  check_bool "flags restored" true (Helpers.flag machine Ssx.Flags.Carry)

let test_call_ret () =
  let machine =
    Helpers.exec
      "    call sub_routine\n    hlt\nsub_routine:\n    mov ax, 0x77\n    ret\n"
  in
  check_int "subroutine ran" 0x77 (ax machine)

let test_conditional_jumps () =
  (* jb taken on carry: the Figure 5 validation relies on it. *)
  let machine =
    Helpers.exec
      "mov ax, 1\ncmp ax, 2\njb below\nmov bx, 0xBAD\nhlt\n\
       below:\nmov bx, 0x600D\nhlt\n"
  in
  check_int "jb taken" 0x600D (bx machine);
  let machine =
    Helpers.exec
      "mov ax, 3\ncmp ax, 2\njb below\nmov bx, 0x600D\nhlt\n\
       below:\nmov bx, 0xBAD\nhlt\n"
  in
  check_int "jb not taken" 0x600D (bx machine)

let test_signed_jumps () =
  let machine =
    Helpers.exec
      "mov ax, 0xFFFF\ncmp ax, 1\njl less\nmov bx, 1\nhlt\nless:\nmov bx, 2\nhlt\n"
  in
  check_int "-1 < 1 signed" 2 (bx machine);
  let machine =
    Helpers.exec
      "mov ax, 0xFFFF\ncmp ax, 1\nja above\nmov bx, 1\nhlt\nabove:\nmov bx, 2\nhlt\n"
  in
  check_int "0xFFFF > 1 unsigned" 2 (bx machine)

let test_loop () =
  let machine =
    Helpers.exec "mov cx, 5\nmov ax, 0\nagain:\ninc ax\nloop again\nhlt\n"
  in
  check_int "looped five times" 5 (ax machine);
  check_int "cx exhausted" 0 (cx machine)

let test_string_copy () =
  let machine, _ =
    Helpers.machine_with
      "mov ax, 0x1000\nmov ds, ax\nmov es, ax\nmov si, 0x200\nmov di, 0x300\n\
       mov cx, 4\ncld\nrep movsb\nhlt\n"
  in
  Ssx.Memory.load_image (Ssx.Machine.memory machine) ~base:0x10200 "abcd";
  Helpers.run_to_halt machine;
  Helpers.check_string "copied" "abcd"
    (Ssx.Memory.dump (Ssx.Machine.memory machine) ~base:0x10300 ~len:4);
  check_int "cx drained" 0 (cx machine)

let test_string_direction () =
  let machine, _ =
    Helpers.machine_with
      "mov ax, 0x1000\nmov ds, ax\nmov si, 0x200\nstd\nlodsb\nlodsb\nhlt\n"
  in
  Ssx.Memory.write_byte (Ssx.Machine.memory machine) 0x10200 0x11;
  Ssx.Memory.write_byte (Ssx.Machine.memory machine) 0x101FF 0x22;
  Helpers.run_to_halt machine;
  check_int "walked backwards" 0x22
    (Ssx.Registers.get8 (Helpers.regs machine) Ssx.Registers.AL)

let test_stos () =
  let machine, _ =
    Helpers.machine_with
      "mov ax, 0x1000\nmov es, ax\nmov di, 0x400\nmov ax, 0x4241\n\
       mov cx, 3\ncld\nrep stosw\nhlt\n"
  in
  Helpers.run_to_halt machine;
  Helpers.check_string "filled" "ABABAB"
    (Ssx.Memory.dump (Ssx.Machine.memory machine) ~base:0x10400 ~len:6)

let test_rep_with_zero_cx () =
  let machine =
    Helpers.exec "mov cx, 0\nrep movsb\nmov ax, 0x99\nhlt\n"
  in
  check_int "skipped" 0x99 (ax machine)

let test_rep_interruptible () =
  (* An NMI in the middle of rep movsb preempts the copy, and iret
     resumes it where it stopped — [19]{2/3.2-REP}. *)
  let machine, image =
    Helpers.machine_with
      "    mov ax, 0x1000\n    mov ds, ax\n    mov es, ax\n    mov si, 0x200\n\
      \    mov di, 0x300\n    mov cx, 8\n    cld\n    rep movsb\n    hlt\n\
       org 0x100\nnmi_handler:\n    mov bx, 0x7777\n    iret\n"
  in
  ignore image;
  let cpu = Ssx.Machine.cpu machine in
  let mem = Ssx.Machine.memory machine in
  Ssx.Memory.load_image mem ~base:0x10200 "12345678";
  (* NMI dispatches through the hardwired IDT at 0xF0000: entry 2. *)
  Ssx.Memory.write_word mem 0xF0008 0x100;
  Ssx.Memory.write_word mem 0xF000A 0x1000;
  cpu.Ssx.Cpu.config |> ignore;
  Helpers.run_steps machine 10;
  (* Mid-copy now; raise the NMI. *)
  Ssx.Cpu.raise_nmi cpu;
  Helpers.run_to_halt machine;
  check_int "handler ran" 0x7777 (bx machine);
  Helpers.check_string "copy completed despite preemption" "12345678"
    (Ssx.Memory.dump mem ~base:0x10300 ~len:8)

let test_hlt_and_nmi_wake () =
  let machine, _ =
    Helpers.machine_with
      "    hlt\n    mov ax, 0x55\n    hlt\norg 0x100\n    iret\n"
  in
  let cpu = Ssx.Machine.cpu machine in
  let mem = Ssx.Machine.memory machine in
  Ssx.Memory.write_word mem 0xF0008 0x100;
  Ssx.Memory.write_word mem 0xF000A 0x1000;
  Helpers.run_steps machine 5;
  check_bool "halted" true cpu.Ssx.Cpu.halted;
  check_int "no progress while halted" 0 (ax machine);
  Ssx.Cpu.raise_nmi cpu;
  Helpers.run_to_halt machine;
  check_int "resumed after iret" 0x55 (ax machine)

let test_nmi_counter_masks () =
  (* While the counter is non-zero, the NMI pin is ignored; it fires
     once the counter drains (the paper's augmentation). *)
  let machine, _ = Helpers.machine_with "spin:\n    jmp spin\norg 0x100\n    hlt\n" in
  let cpu = Ssx.Machine.cpu machine in
  let mem = Ssx.Machine.memory machine in
  Ssx.Memory.write_word mem 0xF0008 0x100;
  Ssx.Memory.write_word mem 0xF000A 0x1000;
  cpu.Ssx.Cpu.regs.Ssx.Registers.nmi_counter <- 50;
  Ssx.Cpu.raise_nmi cpu;
  Helpers.run_steps machine 10;
  check_bool "still masked" false cpu.Ssx.Cpu.halted;
  Helpers.run_steps machine 60;
  check_bool "taken after the counter drained" true cpu.Ssx.Cpu.halted

let test_nmi_sets_counter_and_iret_clears () =
  let machine, _ =
    Helpers.machine_with "    jmp 0\norg 0x100\n    iret\n"
  in
  let cpu = Ssx.Machine.cpu machine in
  let mem = Ssx.Machine.memory machine in
  Ssx.Memory.write_word mem 0xF0008 0x100;
  Ssx.Memory.write_word mem 0xF000A 0x1000;
  Ssx.Cpu.raise_nmi cpu;
  Helpers.run_steps machine 1;
  check_bool "counter raised on entry" true
    (cpu.Ssx.Cpu.regs.Ssx.Registers.nmi_counter > 0);
  Helpers.run_steps machine 1;
  (* The handler's iret executed: counter must be zero again. *)
  check_int "iret clears the counter" 0 cpu.Ssx.Cpu.regs.Ssx.Registers.nmi_counter

let test_nmi_counter_clamped () =
  let machine, _ = Helpers.machine_with "spin:\n    jmp spin\n" in
  let cpu = Ssx.Machine.cpu machine in
  cpu.Ssx.Cpu.regs.Ssx.Registers.nmi_counter <- 1_000_000_000;
  Helpers.run_steps machine 1;
  check_bool "clamped to the register's maximum" true
    (cpu.Ssx.Cpu.regs.Ssx.Registers.nmi_counter
    <= cpu.Ssx.Cpu.config.Ssx.Cpu.nmi_counter_max)

let test_invalid_opcode_faults () =
  let machine, _ = Helpers.machine_with "db 0xFF\nhlt\n" in
  let mem = Ssx.Machine.memory machine in
  (* Vector 6 -> 0x1000:0x80 where a hlt awaits. *)
  Ssx.Memory.write_word mem 24 0x80;
  Ssx.Memory.write_word mem 26 0x1000;
  Ssx.Memory.write_byte mem 0x10080 0x71;
  Helpers.run_to_halt machine;
  check_int "vectored through IDT entry 6" 0x80
    ((Helpers.regs machine).Ssx.Registers.ip - 1)

let test_interrupt_flag_gates_intr () =
  let machine, _ =
    Helpers.machine_with
      "    cli\n    mov ax, 1\n    sti\n    mov ax, 2\nspin:\n    jmp spin\n\
       org 0x100\n    hlt\n"
  in
  let cpu = Ssx.Machine.cpu machine in
  let mem = Ssx.Machine.memory machine in
  Ssx.Memory.write_word mem (4 * 0x20) 0x100;
  Ssx.Memory.write_word mem ((4 * 0x20) + 2) 0x1000;
  Ssx.Cpu.raise_intr cpu 0x20;
  Helpers.run_steps machine 2;
  check_bool "masked while IF clear" false cpu.Ssx.Cpu.halted;
  Helpers.run_steps machine 10;
  check_bool "delivered after sti" true cpu.Ssx.Cpu.halted

let test_interrupt_pushes_frame () =
  let machine, _ =
    Helpers.machine_with "    sti\nspin:\n    jmp spin\norg 0x100\n    hlt\n"
  in
  let cpu = Ssx.Machine.cpu machine in
  let mem = Ssx.Machine.memory machine in
  Ssx.Memory.write_word mem (4 * 0x21) 0x100;
  Ssx.Memory.write_word mem ((4 * 0x21) + 2) 0x1000;
  Ssx.Cpu.raise_intr cpu 0x21;
  Helpers.run_to_halt machine;
  let sp = cpu.Ssx.Cpu.regs.Ssx.Registers.sp in
  check_int "three words pushed" 0xFFF8 sp;
  check_int "saved cs" 0x1000
    (Ssx.Memory.read_word mem (Ssx.Addr.physical ~seg:0x1000 ~off:(sp + 2)));
  check_bool "IF cleared in handler" false (Helpers.flag machine Ssx.Flags.Interrupt)

let test_hardwired_nmi_dispatch () =
  (* With the hardwired IDT, NMI ignores a corrupted IDTR. *)
  let config =
    { Ssx.Cpu.default_config with
      Ssx.Cpu.nmi_dispatch = Ssx.Cpu.Hardwired_idt 0x50000 }
  in
  let machine = Ssx.Machine.create ~config () in
  let mem = Ssx.Machine.memory machine in
  let cpu = Ssx.Machine.cpu machine in
  (* Hardwired IDT entry 2 -> 0x0600:0x0000, where hlt lives. *)
  Ssx.Memory.write_word mem (0x50000 + 8) 0x0000;
  Ssx.Memory.write_word mem (0x50000 + 10) 0x0600;
  Ssx.Memory.write_byte mem 0x6000 0x71;
  cpu.Ssx.Cpu.idtr <- 0xABCDE (* corrupted *);
  cpu.Ssx.Cpu.regs.Ssx.Registers.cs <- 0x1000;
  Ssx.Memory.write_byte mem 0x10000 0x70 (* nop *);
  Ssx.Cpu.raise_nmi cpu;
  Helpers.run_steps machine 2;
  check_int "reached the hardwired handler" 0x0600 cpu.Ssx.Cpu.regs.Ssx.Registers.cs;
  check_bool "halted there" true cpu.Ssx.Cpu.halted

let test_out_reaches_ports () =
  let machine, _ = Helpers.machine_with "mov ax, 0x1234\nout 0x42, ax\nhlt\n" in
  let seen = ref 0 in
  Ssx.Machine.register_port machine ~port:0x42
    ~read:(fun _ -> 0)
    ~write:(fun _ v -> seen := v);
  Helpers.run_to_halt machine;
  check_int "port saw the word" 0x1234 !seen

let test_in_reads_ports () =
  let machine, _ = Helpers.machine_with "in ax, 0x42\nhlt\n" in
  Ssx.Machine.register_port machine ~port:0x42
    ~read:(fun _ -> 0x5678)
    ~write:(fun _ _ -> ());
  Helpers.run_to_halt machine;
  check_int "read the port value" 0x5678 (ax machine)

let test_xchg () =
  let machine = Helpers.exec "mov ax, 1\nmov bx, 2\nxchg ax, bx\nhlt\n" in
  check_int "ax" 2 (ax machine);
  check_int "bx" 1 (bx machine)

let test_far_jump () =
  let machine, _ = Helpers.machine_with "jmp 0x2000:0x0004\n" in
  let mem = Ssx.Machine.memory machine in
  Ssx.Memory.write_byte mem 0x20004 0x71 (* hlt *);
  Helpers.run_to_halt machine;
  check_int "cs changed" 0x2000 ((Helpers.regs machine)).Ssx.Registers.cs

let test_reset_pin () =
  let machine, _ = Helpers.machine_with "mov ax, 0x42\nspin:\njmp spin\n" in
  let cpu = Ssx.Machine.cpu machine in
  Helpers.run_steps machine 5;
  check_int "running" 0x42 (ax machine);
  cpu.Ssx.Cpu.reset_pin <- true;
  Helpers.run_steps machine 1;
  check_int "registers cleared" 0 (ax machine);
  check_int "at the reset vector" (fst cpu.Ssx.Cpu.config.Ssx.Cpu.reset_vector)
    cpu.Ssx.Cpu.regs.Ssx.Registers.cs

let suite =
  [ case "mov immediates" test_mov_imm;
    case "mov through memory" test_mov_memory;
    case "base+displacement addressing" test_mov_base_disp;
    case "segment override" test_segment_override;
    case "bp defaults to ss" test_default_segment_bp;
    case "add sets carry/zero/overflow" test_add_flags;
    case "sub and cmp flags" test_sub_cmp_flags;
    case "adc and sbb" test_adc_sbb;
    case "logic operations clear carry" test_logic;
    case "inc/dec preserve carry" test_inc_dec_preserve_carry;
    case "shifts" test_shifts;
    case "mul ah (figure 3 line 13)" test_mul8;
    case "16-bit multiply" test_mul16;
    case "8-bit divide" test_div;
    case "divide fault vectors through IDT" test_divide_fault;
    case "push/pop are LIFO" test_stack;
    case "pushf/popf" test_pushf_popf;
    case "call and ret" test_call_ret;
    case "conditional jumps (jb)" test_conditional_jumps;
    case "signed vs unsigned conditions" test_signed_jumps;
    case "loop" test_loop;
    case "rep movsb copies" test_string_copy;
    case "direction flag walks backwards" test_string_direction;
    case "rep stosw fills" test_stos;
    case "rep with cx=0 is a no-op" test_rep_with_zero_cx;
    case "rep movsb is interruptible and resumes" test_rep_interruptible;
    case "hlt waits for NMI" test_hlt_and_nmi_wake;
    case "NMI counter masks the pin" test_nmi_counter_masks;
    case "NMI raises counter; iret clears it" test_nmi_sets_counter_and_iret_clears;
    case "NMI counter clamps corrupted values" test_nmi_counter_clamped;
    case "invalid opcode faults" test_invalid_opcode_faults;
    case "IF gates maskable interrupts" test_interrupt_flag_gates_intr;
    case "interrupts push flags/cs/ip" test_interrupt_pushes_frame;
    case "hardwired NMI ignores corrupt IDTR" test_hardwired_nmi_dispatch;
    case "out reaches port handlers" test_out_reaches_ports;
    case "in reads port handlers" test_in_reads_ports;
    case "xchg" test_xchg;
    case "far jump" test_far_jump;
    case "reset pin reinitialises" test_reset_pin ]
