(* Adversarial scheduling daemons (lib/stabilization/adversary) end to
   end: campaign determinism under daemons, snapshot round-trips taken
   mid-outage, the checker-vs-concrete differential (the exhaustive
   worst-case bound must dominate observed convergence), the fairness
   audit with its pinned expected-failure, and the daemon gauges in the
   aggregate observability registry. *)

let case = Helpers.case
let check_int = Helpers.check_int
let check_bool = Helpers.check_bool

module Cluster = Ssos_net.Cluster
module Net_ring = Ssos_net.Net_ring
module Link = Ssos_net.Link
module Rng = Ssx_faults.Rng
module Adversary = Ssx_stab.Adversary
module Model = Ssx_stab.Model
module Runner = Ssos_experiments.Runner

let corrupt_everything rng ring =
  for i = 0 to ring.Net_ring.n - 1 do
    Net_ring.corrupt_state ring i (Rng.int rng 0x10000);
    Net_ring.corrupt_view ring i (Rng.int rng 0x10000)
  done

let lossy_faults ~src:_ ~dst:_ = Link.lossy ~drop:0.1 ~max_delay:2 ()

(* --- campaign determinism under daemons ----------------------------- *)

let check_summary_equal label (a : Runner.summary) (b : Runner.summary) =
  check_int (label ^ ": trials") a.Runner.trials b.Runner.trials;
  check_int (label ^ ": recoveries") a.Runner.recoveries b.Runner.recoveries;
  check_bool (label ^ ": identical summary") true (a = b)

let daemon_campaign ~policy ~strategy ~jobs () =
  let build () =
    Net_ring.build ~n:4 ~policy ~faults:lossy_faults
      ~seed:(Rng.derive 91L 7) ()
  in
  Runner.ring_campaign ~build ~perturb:corrupt_everything ~warmup:200
    ~horizon:1_500 ~window:400 ~strategy ~oversubscribe:true ~jobs ~trials:4
    ~seed:0xADL ()

let test_campaign_invariance_under_daemons () =
  (* The jobs/strategy differential of test_campaigns.ml, re-run with
     daemon policies plugged into the cluster: partitioning trials
     across domains and restoring snapshots instead of rebuilding must
     not change a single bit of the summary.  This is what forces the
     daemons to be pure in (step, config) — any hidden mutable state
     would diverge between the jobs:1 and jobs:4 partitions. *)
  List.iter
    (fun (label, policy) ->
      let reference =
        daemon_campaign ~policy ~strategy:Runner.Snapshot_reset ~jobs:1 ()
      in
      check_bool (label ^ ": campaign recovers") true
        (reference.Runner.recoveries = reference.Runner.trials);
      check_summary_equal (label ^ ": jobs 1 = jobs 4") reference
        (daemon_campaign ~policy ~strategy:Runner.Snapshot_reset ~jobs:4 ());
      check_summary_equal (label ^ ": snapshot-reset = rebuild") reference
        (daemon_campaign ~policy ~strategy:Runner.Rebuild ~jobs:4 ()))
    [ ( "crash{1}",
        Cluster.Daemon
          (Adversary.crash ~victim:1 ~down_from:200 ~down_for:300 ()) );
      ( "adaptive",
        Cluster.Daemon (Adversary.adaptive ~k:Net_ring.k ()) ) ]

(* --- snapshot round-trip mid-outage --------------------------------- *)

let test_snapshot_roundtrip_mid_outage () =
  (* Capture the cluster in the middle of a crash daemon's silent
     window — idle slots already skipped, more to come — and replay:
     the continuation must be digest-identical, and the skipped-slot
     counter must restore and re-accumulate to the same value. *)
  let daemon = Adversary.crash ~victim:1 ~down_from:100 ~down_for:120 () in
  let ring =
    Net_ring.build ~n:4 ~policy:(Cluster.Daemon daemon) ~faults:lossy_faults
      ~seed:92L ()
  in
  let c = ring.Net_ring.cluster in
  Cluster.run c ~steps:150;
  let at_capture = Cluster.skipped_slots c in
  check_bool "mid-window: slots already skipped" true (at_capture > 0);
  let snap = Cluster.capture c in
  Cluster.run c ~steps:200;
  let digest1 = Cluster.digest c in
  let skipped1 = Cluster.skipped_slots c in
  check_bool "outage continued after capture" true (skipped1 > at_capture);
  Cluster.restore c snap;
  check_int "skipped-slot counter restored" at_capture
    (Cluster.skipped_slots c);
  Cluster.run c ~steps:200;
  Helpers.check_string "replay is digest-identical" digest1
    (Cluster.digest c);
  check_int "skipped slots re-accumulated" skipped1 (Cluster.skipped_slots c)

(* --- checker vs concrete: the domination differential --------------- *)

let test_checker_dominates_concrete () =
  (* n = 3..6, three corruption seeds each: run the concrete ring under
     the exact-table adaptive adversary from a fully corrupted joint
     state.  The ring must still converge (the adversary can delay but
     not defeat stabilization), and the post-burn-in abstract move
     count must be dominated by the checker's exhaustive worst-case
     bound over all K^n configurations. *)
  List.iter
    (fun n ->
      let table = Model.analyze ~n ~k:Net_ring.k in
      check_int (Printf.sprintf "n=%d: no divergent configs" n) 0
        (Model.divergent table);
      let worst = Model.worst_bound table in
      List.iter
        (fun s ->
          let daemon = Adversary.adaptive ~table ~k:Net_ring.k () in
          let ring =
            Net_ring.build ~n ~policy:(Cluster.Daemon daemon)
              ~seed:(Rng.derive 93L ((16 * n) + s)) ()
          in
          Cluster.run ring.Net_ring.cluster ~steps:200;
          let rng = Rng.create (Int64.of_int (0x5105 + (16 * n) + s)) in
          corrupt_everything rng ring;
          let trace = Net_ring.converge_moves ~limit:8_000 ring in
          (match trace.Net_ring.converged with
          | Some _ -> ()
          | None ->
            Alcotest.failf "n=%d seed %d: no convergence under adversary" n s);
          if trace.Net_ring.tail_moves > worst then
            Alcotest.failf
              "n=%d seed %d: %d tail moves exceed the exhaustive bound %d" n s
              trace.Net_ring.tail_moves worst;
          check_bool (Printf.sprintf "n=%d seed %d: off-model moves bounded" n s)
            true
            (trace.Net_ring.off_model_moves <= 3 * n))
        [ 0; 1; 2 ])
    [ 3; 4; 5; 6 ]

(* --- the adversary actually bites ----------------------------------- *)

let test_adversary_bites () =
  (* Same scenario, same trials, same master seed: the adaptive daemon
     must make the tail of the convergence distribution strictly worse
     than fair-random's.  (If it ever stops biting, it has degraded
     into a fair schedule and T18 is measuring nothing.) *)
  let outcomes policy =
    let build () =
      Net_ring.build ~n:4 ~policy ~seed:(Rng.derive 94L 1) ()
    in
    Runner.ring_campaign_outcomes ~build ~perturb:corrupt_everything
      ~warmup:200 ~horizon:3_000 ~window:500 ~trials:6 ~seed:94L ()
  in
  let dist policy =
    match Runner.distribution (outcomes policy) with
    | Some d -> d
    | None -> Alcotest.fail "no recovered trials"
  in
  let fair = dist Cluster.Fair_random in
  let adaptive =
    dist (Cluster.Daemon (Adversary.adaptive ~k:Net_ring.k ()))
  in
  check_int "fair-random: all trials recovered" 6 fair.Runner.samples;
  check_int "adaptive: all trials recovered" 6 adaptive.Runner.samples;
  check_bool "adaptive p99 exceeds fair-random p99" true
    (adaptive.Runner.p99 > fair.Runner.p99)

let test_distribution_nearest_rank () =
  (* Runner.distribution is the exact nearest-rank percentile: sort the
     recovered trials' recovery times; the q-percentile is the
     ceil(q * samples)-th. *)
  let mk t = { Runner.recovered = true; recovery_ticks = Some t } in
  let outcomes = List.map mk [ 5; 1; 9; 3; 7; 2; 8; 4; 6; 10 ] in
  (match Runner.distribution outcomes with
  | Some d ->
    check_int "samples" 10 d.Runner.samples;
    check_int "p50" 5 d.Runner.p50;
    check_int "p90" 9 d.Runner.p90;
    check_int "p99" 10 d.Runner.p99;
    check_int "max" 10 d.Runner.max
  | None -> Alcotest.fail "distribution missing");
  (* Unrecovered trials contribute nothing; all-unrecovered is None. *)
  (match
     Runner.distribution
       (mk 42 :: [ { Runner.recovered = false; recovery_ticks = None } ])
   with
  | Some d ->
    check_int "single sample" 1 d.Runner.samples;
    check_int "degenerate percentiles" 42 d.Runner.p50
  | None -> Alcotest.fail "distribution missing");
  check_bool "no recovered trials: no distribution" true
    (Runner.distribution [ { Runner.recovered = false; recovery_ticks = None } ]
    = None)

(* --- fairness audit -------------------------------------------------- *)

(* The schedule actually executed, from the sharded stepper's log
   (idle daemon slots run no node and log nothing). *)
let schedule ~policy ~steps ~seed =
  let ring = Net_ring.build ~n:4 ~policy ~seed () in
  List.map
    (fun (step, who, ()) -> (step, who))
    (Cluster.run_sharded_log ~shards:1
       ~record:(fun _ _ -> ())
       ring.Net_ring.cluster ~steps)

(* Every node scheduled at least once in every disjoint [window]-step
   interval of [0, steps). *)
let fair ~n ~window ~steps entries =
  let windows = steps / window in
  let seen = Array.make_matrix windows n false in
  List.iter
    (fun (step, who) ->
      let w = step / window in
      if w < windows then seen.(w).(who) <- true)
    entries;
  Array.for_all (fun row -> Array.for_all Fun.id row) seen

let test_fairness_audit () =
  (* The audit window is n * K steps — the bound the paper's fairness
     hypothesis quantifies over.  Both friendly built-ins pass it (the
     fair-random case is a pinned-seed regression, not a probability
     statement); the starving daemon is the pinned expected-failure:
     the audit must reject it, and the victim must be absent from the
     executed schedule entirely. *)
  let n = 4 in
  let window = n * Net_ring.k in
  let steps = 10 * window in
  check_bool "round-robin passes the audit" true
    (fair ~n ~window ~steps
       (schedule ~policy:Cluster.Round_robin ~steps ~seed:96L));
  check_bool "fair-random passes the audit (pinned seed)" true
    (fair ~n ~window ~steps
       (schedule ~policy:Cluster.Fair_random ~steps ~seed:96L));
  let starved =
    schedule
      ~policy:(Cluster.Daemon (Adversary.starve ~victim:2 ()))
      ~steps ~seed:96L
  in
  check_bool "starve{2} fails the audit" false
    (fair ~n ~window ~steps starved);
  check_bool "the victim never runs" true
    (List.for_all (fun (_, who) -> who <> 2) starved);
  check_bool "the other nodes all run" true
    (List.for_all
       (fun i -> i = 2 || List.exists (fun (_, who) -> who = i) starved)
       [ 0; 1; 2; 3 ]);
  (* Crash-and-resurrect: unfair only during the outage — the victim is
     missing from the window covering [50, 150) (so the audit fails),
     idle slots log nothing, and the victim reappears afterwards. *)
  let crashed =
    schedule
      ~policy:
        (Cluster.Daemon
           (Adversary.crash ~victim:1 ~down_from:50 ~down_for:100 ()))
      ~steps ~seed:96L
  in
  check_bool "crash{1} fails the audit during the outage" false
    (fair ~n ~window ~steps crashed);
  check_bool "idle slots log nothing" true
    (List.length crashed < steps);
  check_bool "victim silent while down" true
    (List.for_all
       (fun (step, who) -> not (step >= 50 && step < 150 && who = 1))
       crashed);
  check_bool "victim resurrects" true
    (List.exists (fun (step, who) -> step >= 150 && who = 1) crashed)

(* --- daemon gauges in the aggregate registry ------------------------ *)

let test_daemon_gauges_in_aggregate_registry () =
  let module Obs = Ssos_obs.Obs in
  Obs.reset ();
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
    (fun () ->
      (* 256 nodes: Cluster.observe defaults to aggregate link mode
         above 64 nodes.  The daemon gauges must be registered there
         alongside the link aggregates, with no per-link rows. *)
      let daemon = Adversary.crash ~victim:7 ~down_from:0 ~down_for:100 () in
      let ring =
        Net_ring.build ~n:256 ~policy:(Cluster.Daemon daemon) ~obs:false
          ~seed:97L ()
      in
      Cluster.observe ~prefix:"adv" ring.Net_ring.cluster;
      Cluster.run ring.Net_ring.cluster ~steps:120;
      let rows = (Obs.snapshot ()).Obs.rows in
      let gauge name =
        match
          List.find_opt (fun (r : Obs.row) -> r.Obs.name = name) rows
        with
        | Some { Obs.value = Obs.Gauge v; _ } -> v
        | Some _ | None -> Alcotest.failf "no gauge %s" name
      in
      check_bool "skipped slots surface as a gauge" true
        (gauge "adv.daemon{crash{7}}.skipped-slots"
        = float_of_int (Cluster.skipped_slots ring.Net_ring.cluster));
      check_bool "crash daemon counted some idle slots" true
        (gauge "adv.daemon{crash{7}}.skipped-slots" > 0.);
      check_bool "crash daemon is stateless" true
        (gauge "adv.daemon{crash{7}}.stateful" = 0.);
      check_bool "aggregate link gauges present" true
        (gauge "adv.links.count" = 256.);
      check_bool "no per-link rows in aggregate mode" true
        (List.for_all
           (fun (r : Obs.row) ->
             not
               (String.length r.Obs.name >= 9
               && String.sub r.Obs.name 0 9 = "adv.link{"))
           rows);
      (* The adaptive daemon flags itself stateful (shards forced
         sequential) through the same registry. *)
      let small =
        Net_ring.build ~n:4
          ~policy:(Cluster.Daemon (Adversary.adaptive ~k:Net_ring.k ()))
          ~obs:false ~seed:98L ()
      in
      Cluster.observe ~prefix:"adv2" small.Net_ring.cluster;
      let rows = (Obs.snapshot ()).Obs.rows in
      match
        List.find_opt
          (fun (r : Obs.row) -> r.Obs.name = "adv2.daemon{adaptive}.stateful")
          rows
      with
      | Some { Obs.value = Obs.Gauge v; _ } ->
        check_bool "adaptive daemon is stateful" true (v = 1.)
      | Some _ | None -> Alcotest.fail "no adaptive stateful gauge")

let suite =
  [ case "campaigns are jobs/strategy invariant under daemons"
      test_campaign_invariance_under_daemons;
    case "snapshot round-trip mid crash window"
      test_snapshot_roundtrip_mid_outage;
    case "exhaustive worst-case bound dominates the concrete ring"
      test_checker_dominates_concrete;
    case "adaptive daemon bites (p99 above fair-random)"
      test_adversary_bites;
    case "distribution is exact nearest-rank" test_distribution_nearest_rank;
    case "fairness audit and its pinned expected-failure"
      test_fairness_audit;
    case "daemon gauges in the aggregate registry"
      test_daemon_gauges_in_aggregate_registry ]
