let case = Helpers.case
let check_int = Helpers.check_int
let check_bool = Helpers.check_bool

let test_counter_process_validates () =
  let p = Ssos.Process.counter_process ~index:0 in
  let plain = Ssos.Process.assemble_plain p in
  match
    Ssos.Process.validate ~model:Ssos.Process.Scheduled
      ~code_len:(String.length plain.Ssx_asm.Assemble.bytes)
      plain.Ssx_asm.Assemble.bytes
  with
  | Ok () -> ()
  | Error problems -> Alcotest.failf "violations: %s" (String.concat "; " problems)

let test_body_validates_for_primitive () =
  let p = Ssos.Process.counter_body ~index:1 in
  let plain = Ssos.Process.assemble_plain p in
  match
    Ssos.Process.validate ~model:Ssos.Process.Primitive
      ~code_len:(String.length plain.Ssx_asm.Assemble.bytes)
      plain.Ssx_asm.Assemble.bytes
  with
  | Ok () -> ()
  | Error problems -> Alcotest.failf "violations: %s" (String.concat "; " problems)

let test_counter_process_loops_rejected_in_primitive () =
  (* The full process has a backward jmp — illegal under §5.1. *)
  let p = Ssos.Process.counter_process ~index:0 in
  let plain = Ssos.Process.assemble_plain p in
  match
    Ssos.Process.validate ~model:Ssos.Process.Primitive
      ~code_len:(String.length plain.Ssx_asm.Assemble.bytes)
      plain.Ssx_asm.Assemble.bytes
  with
  | Ok () -> Alcotest.fail "backward branch must be rejected"
  | Error problems ->
    check_bool "mentions backward branch" true
      (List.exists (fun p -> Astring_contains.contains p "backward") problems)

let assemble_raw source =
  (Ssx_asm.Assemble.assemble ~origin:0 source).Ssx_asm.Assemble.bytes

let check_rejects what source =
  let code = assemble_raw source in
  match
    Ssos.Process.validate ~model:Ssos.Process.Scheduled
      ~code_len:(String.length code) code
  with
  | Ok () -> Alcotest.failf "%s must be rejected" what
  | Error problems ->
    check_bool "has a diagnostic" true (List.length problems >= 1)

let test_forbidden_instructions () =
  check_rejects "push" "push ax\n";
  check_rejects "pop" "pop ax\n";
  check_rejects "pushf" "pushf\n";
  check_rejects "call" "call 0\n";
  check_rejects "ret" "ret\n";
  check_rejects "iret" "iret\n";
  check_rejects "int" "int 0x10\n";
  check_rejects "hlt" "hlt\n";
  check_rejects "sti" "sti\n";
  check_rejects "cli" "cli\n";
  check_rejects "far jump" "jmp 0x2000:0\n";
  check_rejects "div" "div cl\n"

let test_branch_outside_window_rejected () =
  check_rejects "escaping branch" "jmp 0x2000\n"

let test_image_is_window_sized () =
  let image = Ssos.Process.assemble_image (Ssos.Process.counter_process ~index:0) in
  check_int "4 KiB" Ssos.Layout.proc_image_size (String.length image)

let test_every_aligned_offset_is_instruction_start () =
  (* The §5.2 IP_MASK guarantee: after masking, ip points at a real
     instruction.  Scan: decoding from any 16-aligned offset must never
     produce an Invalid instruction in its forward chain within the
     block. *)
  let image = Ssos.Process.assemble_image (Ssos.Process.counter_process ~index:0) in
  let boundaries = Ssos.Layout.proc_image_size / Ssos.Layout.instr_align in
  for block = 0 to boundaries - 1 do
    let pos = block * Ssos.Layout.instr_align in
    let decoded, len = Ssx.Codec.decode_bytes image ~pos in
    check_bool
      (Printf.sprintf "offset 0x%04X decodes" pos)
      true
      (match decoded with Ssx.Instruction.Invalid _ -> false | _ -> len >= 1)
  done

let test_filler_leads_home () =
  (* Landing anywhere in the tail must jump back to offset 0. *)
  let image = Ssos.Process.assemble_image (Ssos.Process.counter_process ~index:0) in
  let tail_start = 2 * Ssos.Layout.instr_align in
  let pos = ((String.length image - tail_start) / 16 * 8 + tail_start) / 16 * 16 in
  let decoded, _ = Ssx.Codec.decode_bytes image ~pos in
  check_bool "filler jumps to entry" true (decoded = Ssx.Instruction.Jmp 0)

let test_oversize_rejected () =
  let huge =
    { (Ssos.Process.counter_process ~index:0) with
      Ssos.Process.source =
        String.concat ""
          (List.init 2000 (fun _ -> "    mov ax, 0x1234\n    mov [0], ax\n")) }
  in
  check_bool "oversize image rejected" true
    (match Ssos.Process.assemble_image huge with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_data_segments_distinct () =
  let segments = List.init 8 Ssos.Process.data_segment in
  check_int "all distinct" 8 (List.length (List.sort_uniq compare segments))

let suite =
  [ case "counter process passes the checker" test_counter_process_validates;
    case "loop-free body passes the primitive checker" test_body_validates_for_primitive;
    case "loops rejected under the primitive model"
      test_counter_process_loops_rejected_in_primitive;
    case "forbidden instructions rejected" test_forbidden_instructions;
    case "branches outside the window rejected" test_branch_outside_window_rejected;
    case "images fill the 4 KiB window" test_image_is_window_sized;
    case "every aligned offset is an instruction start"
      test_every_aligned_offset_is_instruction_start;
    case "filler blocks jump to the entry" test_filler_leads_home;
    case "oversize processes rejected" test_oversize_rejected;
    case "data segments are distinct" test_data_segments_distinct ]
