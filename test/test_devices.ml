let case = Helpers.case
let check_int = Helpers.check_int
let check_bool = Helpers.check_bool

let idle_machine () =
  (* A machine spinning on a nop sled; NMIs land on a hlt-free iret
     handler in the hardwired IDT region. *)
  let machine, _ = Helpers.machine_with "spin:\n    jmp spin\n" in
  machine

let test_watchdog_fires_periodically () =
  let machine = idle_machine () in
  let wd = Ssx_devices.Watchdog.create ~period:10 ~target:Ssx_devices.Watchdog.Nmi_pin in
  Ssx.Machine.add_device machine (Ssx_devices.Watchdog.device wd);
  Helpers.run_steps machine 100;
  check_int "ten firings in 100 ticks" 10 (Ssx_devices.Watchdog.fired_count wd)

let test_watchdog_from_any_state () =
  (* Self-stabilization of the device itself: from any counter value the
     signal arrives within one period. *)
  List.iter
    (fun corrupt ->
      let machine = idle_machine () in
      let wd =
        Ssx_devices.Watchdog.create ~period:10 ~target:Ssx_devices.Watchdog.Nmi_pin
      in
      Ssx.Machine.add_device machine (Ssx_devices.Watchdog.device wd);
      Ssx_devices.Watchdog.corrupt wd corrupt;
      Helpers.run_steps machine 11;
      check_bool
        (Printf.sprintf "fired within a period from %d" corrupt)
        true
        (Ssx_devices.Watchdog.fired_count wd >= 1))
    [ -5; 0; 1; 9; 10; 11; 1_000_000 ]

let test_watchdog_no_premature_after_clamp () =
  let machine = idle_machine () in
  let wd = Ssx_devices.Watchdog.create ~period:100 ~target:Ssx_devices.Watchdog.Nmi_pin in
  Ssx.Machine.add_device machine (Ssx_devices.Watchdog.device wd);
  Ssx_devices.Watchdog.corrupt wd 5;
  Helpers.run_steps machine 5;
  check_int "one early signal allowed" 1 (Ssx_devices.Watchdog.fired_count wd);
  Helpers.run_steps machine 100;
  check_int "then the period is respected" 2 (Ssx_devices.Watchdog.fired_count wd)

let test_watchdog_reset_target () =
  let machine = idle_machine () in
  let cpu = Ssx.Machine.cpu machine in
  (* A hlt at the reset vector keeps the machine parked post-reset. *)
  let seg, off = cpu.Ssx.Cpu.config.Ssx.Cpu.reset_vector in
  Ssx.Memory.write_byte (Ssx.Machine.memory machine)
    (Ssx.Addr.physical ~seg ~off) 0x71;
  let wd = Ssx_devices.Watchdog.create ~period:10 ~target:Ssx_devices.Watchdog.Reset_pin in
  Ssx.Machine.add_device machine (Ssx_devices.Watchdog.device wd);
  Helpers.run_steps machine 12;
  check_int "reset happened" seg cpu.Ssx.Cpu.regs.Ssx.Registers.cs;
  check_bool "parked at the reset vector" true cpu.Ssx.Cpu.halted

let test_console_capture () =
  let machine, _ =
    Helpers.machine_with "mov al, 'h'\nout 0x10, al\nmov al, 'i'\nout 0x10, al\nhlt\n"
  in
  let console = Ssx_devices.Console.create () in
  Ssx_devices.Console.attach console machine;
  Helpers.run_to_halt machine;
  Helpers.check_string "captured" "hi" (Ssx_devices.Console.contents console);
  Ssx_devices.Console.clear console;
  Helpers.check_string "cleared" "" (Ssx_devices.Console.contents console)

let test_heartbeat_timestamps () =
  let machine, _ =
    Helpers.machine_with "mov ax, 7\nout 0x12, ax\nmov ax, 8\nout 0x12, ax\nhlt\n"
  in
  let hb = Ssx_devices.Heartbeat.create () in
  Ssx_devices.Heartbeat.attach hb machine;
  Helpers.run_to_halt machine;
  check_int "two samples" 2 (Ssx_devices.Heartbeat.count hb);
  (match Ssx_devices.Heartbeat.samples hb with
  | [ a; b ] ->
    check_int "first value" 7 a.Ssx_devices.Heartbeat.value;
    check_int "second value" 8 b.Ssx_devices.Heartbeat.value;
    check_bool "time advances" true (b.Ssx_devices.Heartbeat.tick > a.Ssx_devices.Heartbeat.tick)
  | _ -> Alcotest.fail "expected two samples");
  match Ssx_devices.Heartbeat.last hb with
  | Some s -> check_int "last" 8 s.Ssx_devices.Heartbeat.value
  | None -> Alcotest.fail "no last sample"

let test_nvstore () =
  let store = Ssx_devices.Nvstore.create () in
  Ssx_devices.Nvstore.add store ~name:"img" ~base:0x4000 "golden";
  let mem = Ssx.Memory.create () in
  Ssx_devices.Nvstore.install store mem "img";
  check_bool "matches after install" true (Ssx_devices.Nvstore.verify store mem "img");
  Ssx.Memory.write_byte mem 0x4002 0xFF;
  check_bool "detects corruption" false (Ssx_devices.Nvstore.verify store mem "img");
  Ssx_devices.Nvstore.install store mem "img";
  check_bool "reinstall repairs" true (Ssx_devices.Nvstore.verify store mem "img");
  Ssx_devices.Nvstore.install_at store mem ~base:0x5000 "img";
  Helpers.check_string "install_at" "golden" (Ssx.Memory.dump mem ~base:0x5000 ~len:6);
  check_bool "unknown image" true
    (match Ssx_devices.Nvstore.install store mem "nope" with
    | () -> false
    | exception Not_found -> true)

let test_timer_interrupts () =
  let machine, _ =
    Helpers.machine_with "    sti\nspin:\n    jmp spin\norg 0x100\n    hlt\n"
  in
  let mem = Ssx.Machine.memory machine in
  Ssx.Memory.write_word mem (4 * 0x20) 0x100;
  Ssx.Memory.write_word mem ((4 * 0x20) + 2) 0x1000;
  let timer = Ssx_devices.Timer.create ~period:10 ~vector:0x20 in
  Ssx.Machine.add_device machine (Ssx_devices.Timer.device timer);
  Helpers.run_steps machine 15;
  check_bool "timer fired" true (Ssx_devices.Timer.fired_count timer >= 1);
  check_bool "handler reached" true (Ssx.Machine.cpu machine).Ssx.Cpu.halted

let test_timer_clamps () =
  let machine = idle_machine () in
  let timer = Ssx_devices.Timer.create ~period:10 ~vector:0x20 in
  Ssx.Machine.add_device machine (Ssx_devices.Timer.device timer);
  Ssx_devices.Timer.corrupt timer 1_000_000;
  Helpers.run_steps machine 11;
  check_bool "fires within a period from a corrupt state" true
    (Ssx_devices.Timer.fired_count timer >= 1)

let test_heartbeat_snapshot_roundtrip () =
  (* The heartbeat registers its buffer with the snapshot machinery:
     capture mid-trace, keep running, restore — the trace must rewind
     to the capture point exactly. *)
  let machine, _ =
    Helpers.machine_with
      "    mov ax, 1\nbeat:\n    out 0x12, ax\n    inc ax\n    jmp beat\n"
  in
  let hb = Ssx_devices.Heartbeat.create () in
  Ssx_devices.Heartbeat.attach hb machine;
  Helpers.run_steps machine 60;
  let at_capture = Ssx_devices.Heartbeat.samples hb in
  check_bool "samples before capture" true (at_capture <> []);
  let snapshot = Ssx.Snapshot.capture machine in
  Helpers.run_steps machine 60;
  check_bool "more samples accrue" true
    (Ssx_devices.Heartbeat.count hb > List.length at_capture);
  Ssx.Snapshot.restore snapshot machine;
  check_bool "trace rewound to the capture point" true
    (Ssx_devices.Heartbeat.samples hb = at_capture);
  (* And the rewound machine replays identically: same count again. *)
  Helpers.run_steps machine 60;
  let replayed = Ssx_devices.Heartbeat.count hb in
  Ssx.Snapshot.restore snapshot machine;
  Helpers.run_steps machine 60;
  check_int "deterministic replay" replayed (Ssx_devices.Heartbeat.count hb)

let test_nvstore_snapshot_roundtrip () =
  (* Nvstore golden images are host state outside the machine: a
     snapshot restore repairs the installed RAM copy, and the golden
     bytes themselves are untouched by capture/restore. *)
  let machine = idle_machine () in
  let mem = Ssx.Machine.memory machine in
  let store = Ssx_devices.Nvstore.create () in
  Ssx_devices.Nvstore.add store ~name:"img" ~base:0x4000 "golden";
  Ssx_devices.Nvstore.install store mem "img";
  let snapshot = Ssx.Snapshot.capture machine in
  Ssx.Memory.write_byte mem 0x4002 0xFF;
  check_bool "installed copy corrupted" false
    (Ssx_devices.Nvstore.verify store mem "img");
  Ssx.Snapshot.restore snapshot machine;
  check_bool "restore repairs the installed copy" true
    (Ssx_devices.Nvstore.verify store mem "img");
  check_bool "golden image itself untouched" true
    (Ssx_devices.Nvstore.find store "img" = Some (0x4000, "golden"))

let test_device_state_survives_reset_pin () =
  (* A watchdog on the reset pin restarts the CPU, not the world: the
     heartbeat trace and the nvstore image survive the reset. *)
  let machine, _ =
    Helpers.machine_with
      "    mov ax, 1\nbeat:\n    out 0x12, ax\n    inc ax\n    jmp beat\n"
  in
  let cpu = Ssx.Machine.cpu machine in
  let seg, off = cpu.Ssx.Cpu.config.Ssx.Cpu.reset_vector in
  Ssx.Memory.write_byte (Ssx.Machine.memory machine)
    (Ssx.Addr.physical ~seg ~off) 0x71;
  let hb = Ssx_devices.Heartbeat.create () in
  Ssx_devices.Heartbeat.attach hb machine;
  let store = Ssx_devices.Nvstore.create () in
  Ssx_devices.Nvstore.add store ~name:"img" ~base:0x4000 "golden";
  Ssx_devices.Nvstore.install store (Ssx.Machine.memory machine) "img";
  let wd =
    Ssx_devices.Watchdog.create ~period:30 ~target:Ssx_devices.Watchdog.Reset_pin
  in
  Ssx.Machine.add_device machine (Ssx_devices.Watchdog.device wd);
  Helpers.run_steps machine 100;
  check_bool "the reset happened" true
    (Ssx_devices.Watchdog.fired_count wd >= 1);
  check_bool "parked at the reset vector" true cpu.Ssx.Cpu.halted;
  check_bool "heartbeat trace survives the reset" true
    (Ssx_devices.Heartbeat.count hb > 0);
  check_bool "nvstore image survives the reset" true
    (Ssx_devices.Nvstore.verify store (Ssx.Machine.memory machine) "img")

let test_invalid_periods_rejected () =
  check_bool "watchdog" true
    (match Ssx_devices.Watchdog.create ~period:0 ~target:Ssx_devices.Watchdog.Nmi_pin with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check_bool "timer" true
    (match Ssx_devices.Timer.create ~period:(-3) ~vector:0 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let suite =
  [ case "watchdog fires periodically" test_watchdog_fires_periodically;
    case "watchdog is self-stabilizing" test_watchdog_from_any_state;
    case "watchdog clamping bounds damage" test_watchdog_no_premature_after_clamp;
    case "watchdog can drive the reset pin" test_watchdog_reset_target;
    case "console capture" test_console_capture;
    case "heartbeat timestamps" test_heartbeat_timestamps;
    case "non-volatile store" test_nvstore;
    case "timer raises maskable interrupts" test_timer_interrupts;
    case "timer clamps corrupted counters" test_timer_clamps;
    case "heartbeat trace snapshot round-trip" test_heartbeat_snapshot_roundtrip;
    case "nvstore snapshot round-trip" test_nvstore_snapshot_roundtrip;
    case "device state survives a reset-pin reset"
      test_device_state_survives_reset_pin;
    case "invalid periods rejected" test_invalid_periods_rejected ]
