(* Differential tests for the two acceleration layers: the decoded-
   instruction cache and the basic-block compiler.  The accelerated and
   plain interpreters must be observationally identical — same per-tick
   Cpu.event trace and same final machine state — on every seed
   workload, under self-modifying code and under fault injection into
   code regions.  This is the faithfulness argument for the §5.2
   mis-decode hazard: caching or compiling never changes what the
   machine does, only how fast the host simulates it. *)

let pp_event ppf = function
  | Ssx.Cpu.Executed i -> Format.fprintf ppf "executed %a" Ssx.Instruction.pp i
  | Ssx.Cpu.Took_interrupt { vector; nmi } ->
    Format.fprintf ppf "interrupt vector=%d nmi=%b" vector nmi
  | Ssx.Cpu.Took_exception v -> Format.fprintf ppf "exception %d" v
  | Ssx.Cpu.Halted_idle -> Format.fprintf ppf "halted"
  | Ssx.Cpu.Did_reset -> Format.fprintf ppf "reset"

(* Run both machines in lock-step and fail at the first divergent tick,
   then compare complete final snapshots. *)
let assert_lockstep name ~ticks fast slow =
  for tick = 1 to ticks do
    let ef = Ssx.Machine.tick fast in
    let es = Ssx.Machine.tick slow in
    if ef <> es then
      Alcotest.failf "%s: traces diverge at tick %d: fast %a, plain %a" name
        tick pp_event ef pp_event es
  done;
  let sf = Ssx.Snapshot.capture fast and ss = Ssx.Snapshot.capture slow in
  if not (Ssx.Snapshot.equal sf ss) then
    Alcotest.failf "%s: final states differ after identical traces: %a" name
      (Format.pp_print_list Ssx.Snapshot.pp_difference)
      (Ssx.Snapshot.diff sf ss)

let assert_cache_exercised name ~ticks cached =
  match Ssx.Machine.decode_cache cached with
  | None -> Alcotest.failf "%s: cached machine has no decode cache" name
  | Some cache ->
    (* The hot path does not count hits (see Cpu.exec_one), so "the
       cache was exercised" is: entries were filled, and far fewer fills
       than executed steps — i.e. almost every step was served from the
       cache. *)
    let misses = Ssx.Decode_cache.misses cache in
    Helpers.check_bool (name ^ ": cache was actually filled") true (misses > 0);
    (* On long runs almost every step must be a cache hit; short
       self-modifying workloads legitimately churn the cache. *)
    if ticks >= 1000 then
      Helpers.check_bool
        (name ^ ": cache served most steps")
        true
        (misses * 10 < Ssx.Machine.ticks cached)

let assert_jit_exercised name machine =
  match Ssx.Machine.jit machine with
  | None -> Alcotest.failf "%s: jit machine has no block compiler" name
  | Some jit ->
    Helpers.check_bool
      (name ^ ": blocks were compiled")
      true
      (Ssx.Block_compiler.built jit > 0);
    Helpers.check_bool
      (name ^ ": ticks ran through compiled blocks")
      true
      (Ssx.Block_compiler.block_ticks jit > 0)

let assert_identical_runs name ~ticks cached uncached =
  assert_lockstep name ~ticks cached uncached;
  assert_cache_exercised name ~ticks cached

(* Decode cache differential: cached vs raw re-decoding, block compiler
   off on both sides so every step actually consults the cache. *)
let differential name ~ticks build =
  Helpers.case name (fun () ->
      let cached = build ~decode_cache:true ~jit:false in
      let uncached = build ~decode_cache:false ~jit:false in
      assert_identical_runs name ~ticks cached uncached)

(* Block compiler differential: same workload through compiled blocks
   vs the cached interpreter. *)
let jit_differential name ~ticks build =
  let name = "jit " ^ name in
  Helpers.case name (fun () ->
      let compiled = build ~decode_cache:true ~jit:true in
      let interpreted = build ~decode_cache:true ~jit:false in
      assert_lockstep name ~ticks compiled interpreted;
      assert_jit_exercised name compiled)

(* --- seed workloads -------------------------------------------------- *)

let reinstall_restart ~decode_cache ~jit =
  (Ssos.Reinstall.build ~decode_cache ~jit ()).Ssos.System.machine

let reinstall_continue ~decode_cache ~jit =
  (Ssos.Reinstall.build ~decode_cache ~jit ~variant:Ssos.Reinstall.Continue ())
    .Ssos.System.machine

let reinstall_reset_wired ~decode_cache ~jit =
  (Ssos.Reinstall.build ~decode_cache ~jit ~wiring:Ssos.Reinstall.Reset_wired
     ())
    .Ssos.System.machine

let reinstall_journal ~decode_cache ~jit =
  (Ssos.Reinstall.build ~decode_cache ~jit ~guest:(Ssos.Guest.journal_kernel ())
     ())
    .Ssos.System.machine

let reinstall_preemptive ~decode_cache ~jit =
  (Ssos.Reinstall.build ~decode_cache ~jit ~timer_period:700
     ~guest:(Ssos.Guest.preemptive_kernel ()) ())
    .Ssos.System.machine

let monitor_tasks ~decode_cache ~jit =
  (Ssos.Monitor.build ~decode_cache ~jit ()).Ssos.Monitor.system
    .Ssos.System.machine

let sched_default ~decode_cache ~jit =
  (Ssos.Sched.build ~decode_cache ~jit ()).Ssos.Sched.machine

let sched_paper ~decode_cache ~jit =
  (Ssos.Sched.build ~decode_cache ~jit ~cs_check:Ssos.Sched.Paper_jb
     ~ip_mask:Ssos.Sched.Paper_mask ~refresh:false ())
    .Ssos.Sched.machine

let token_os ~decode_cache ~jit =
  (Ssos.Token_os.build ~decode_cache ~jit ()).Ssos.Sched.machine

(* --- fault injection into code regions ------------------------------- *)

(* Same seed on both sides: as long as the traces stay identical, both
   injectors draw the same faults at the same ticks, so any divergence
   caused by a stale cached decode (or a stale compiled block) of a
   corrupted code byte would surface as a trace mismatch. *)
let faulted_pair name ~ticks ~seed ~space ~fast ~slow ~exercised build =
  Helpers.case name (fun () ->
      let with_injector build_machine =
        let machine, fault_system = build_machine build in
        let rng = Ssx_faults.Rng.create seed in
        let schedule =
          Ssx_faults.Injector.Every
            { period = 97; start_tick = 500; stop_tick = ticks }
        in
        let injector =
          Ssx_faults.Injector.attach fault_system ~rng ~space:(space ())
            ~schedule
        in
        (machine, injector)
      in
      let fast_machine, i_fast = with_injector fast in
      let slow_machine, i_slow = with_injector slow in
      assert_lockstep name ~ticks fast_machine slow_machine;
      exercised name ~ticks fast_machine;
      Helpers.check_int
        (name ^ ": both injectors applied the same number of faults")
        (Ssx_faults.Injector.injected_count i_fast)
        (Ssx_faults.Injector.injected_count i_slow);
      Helpers.check_bool (name ^ ": faults were actually injected") true
        (Ssx_faults.Injector.injected_count i_fast > 0))

let faulted name ~ticks ~seed ~space build =
  faulted_pair name ~ticks ~seed ~space
    ~fast:(fun build -> build ~decode_cache:true ~jit:false)
    ~slow:(fun build -> build ~decode_cache:false ~jit:false)
    ~exercised:assert_cache_exercised build

let jit_faulted name ~ticks ~seed ~space build =
  faulted_pair ("jit " ^ name) ~ticks ~seed ~space
    ~fast:(fun build -> build ~decode_cache:true ~jit:true)
    ~slow:(fun build -> build ~decode_cache:true ~jit:false)
    ~exercised:(fun name ~ticks:_ machine -> assert_jit_exercised name machine)
    build

let reinstall_fault_target ~decode_cache ~jit =
  let system = Ssos.Reinstall.build ~decode_cache ~jit () in
  (system.Ssos.System.machine, Ssos.System.fault_system system)

let sched_fault_target ~decode_cache ~jit =
  let sched = Ssos.Sched.build ~decode_cache ~jit () in
  (sched.Ssos.Sched.machine, Ssos.Sched.fault_system sched)

(* Corruption aimed exclusively at the guest image (code included): the
   §5.2 hazard in its purest form — code bytes change under the
   interpreter's feet and must be re-decoded. *)
let code_only_space () = Ssos.System.ram_only_fault_space

let full_space () = Ssos.System.default_fault_space

(* --- self-modifying code --------------------------------------------- *)

(* A guest that patches the immediate operand of its own next
   instruction on every loop iteration.  The first iteration seeds the
   cache (and compiles the surrounding block); each later patch must
   invalidate it, or dx ends up holding a stale immediate.  For the
   block compiler this is the store-into-the-*current*-block case: the
   patching [mov] and its target live in the same straight-line run. *)
let self_modifying_immediate ~decode_cache ~jit =
  let source =
    "start:\n\
    \    mov ax, cs\n\
    \    mov ds, ax\n\
    \    mov cx, 4\n\
    \    mov bx, 0x1000\n\
     loop_top:\n\
    \    add bx, 0x1111\n\
    \    mov [target+2], bx\n\
     target:\n\
    \    mov dx, 0x9999\n\
    \    loop loop_top\n\
    \    hlt\n"
  in
  let machine, _ = Helpers.machine_with ~decode_cache ~jit source in
  machine

(* A guest that rewrites the opcode bytes of its (already executed, so
   already cached/compiled) next instruction: two nops become
   [inc dx]. *)
let self_modifying_opcode ~decode_cache ~jit =
  let patch_word =
    match Ssx.Codec.encode (Ssx.Instruction.Inc_r16 Ssx.Registers.DX) with
    | [ opcode; operand ] -> opcode lor (operand lsl 8)
    | _ -> Alcotest.fail "inc dx is expected to encode in two bytes"
  in
  let source =
    "start:\n\
    \    mov ax, cs\n\
    \    mov ds, ax\n\
    \    mov dx, 0\n\
    \    mov cx, 2\n\
     loop_top:\n\
    \    cmp cx, 1\n\
    \    jne skip_patch\n\
    \    mov ax, PATCH_WORD\n\
    \    mov [target], ax\n\
     skip_patch:\n\
     target:\n\
    \    nop\n\
    \    nop\n\
    \    loop loop_top\n\
    \    hlt\n"
  in
  let machine, _ =
    Helpers.machine_with ~symbols:[ ("PATCH_WORD", patch_word) ] ~decode_cache
      ~jit source
  in
  machine

(* The cross-block variant: the patch site and its target sit in
   different basic blocks (a [jmp] separates them), and the target
   block has already executed — so it is compiled — when the store
   lands.  The write must condemn the *other* block, not the one
   currently running. *)
let cross_block_patch ~decode_cache ~jit =
  let patch_word =
    match Ssx.Codec.encode (Ssx.Instruction.Inc_r16 Ssx.Registers.DX) with
    | [ opcode; operand ] -> opcode lor (operand lsl 8)
    | _ -> Alcotest.fail "inc dx is expected to encode in two bytes"
  in
  let source =
    "start:\n\
    \    mov ax, cs\n\
    \    mov ds, ax\n\
    \    mov dx, 0\n\
    \    mov cx, 3\n\
     loop_top:\n\
    \    jmp target_block\n\
     target_block:\n\
     target:\n\
    \    nop\n\
    \    nop\n\
    \    jmp patcher\n\
     patcher:\n\
    \    cmp cx, 2\n\
    \    jne skip_patch\n\
    \    mov ax, PATCH_WORD\n\
    \    mov [target], ax\n\
     skip_patch:\n\
    \    loop loop_top\n\
    \    hlt\n"
  in
  let machine, _ =
    Helpers.machine_with ~symbols:[ ("PATCH_WORD", patch_word) ] ~decode_cache
      ~jit source
  in
  machine

let test_self_modifying_immediate () =
  let cached = self_modifying_immediate ~decode_cache:true ~jit:false in
  let uncached = self_modifying_immediate ~decode_cache:false ~jit:false in
  assert_identical_runs "self-modifying immediate" ~ticks:60 cached uncached;
  (* The cached machine is not just consistent but *right*: dx holds the
     value patched in on the final iteration, not the first cached one. *)
  Helpers.check_int "dx reflects the last patched immediate" 0x5444
    (Helpers.regs cached).Ssx.Registers.dx

let test_self_modifying_opcode () =
  let cached = self_modifying_opcode ~decode_cache:true ~jit:false in
  let uncached = self_modifying_opcode ~decode_cache:false ~jit:false in
  assert_identical_runs "self-modifying opcode" ~ticks:40 cached uncached;
  Helpers.check_int "the patched-in inc dx executed" 1
    (Helpers.regs cached).Ssx.Registers.dx

let test_jit_self_modifying_immediate () =
  let compiled = self_modifying_immediate ~decode_cache:true ~jit:true in
  let interpreted = self_modifying_immediate ~decode_cache:true ~jit:false in
  assert_lockstep "jit self-modifying immediate" ~ticks:60 compiled interpreted;
  assert_jit_exercised "jit self-modifying immediate" compiled;
  Helpers.check_int "dx reflects the last patched immediate" 0x5444
    (Helpers.regs compiled).Ssx.Registers.dx

let test_jit_self_modifying_opcode () =
  let compiled = self_modifying_opcode ~decode_cache:true ~jit:true in
  let interpreted = self_modifying_opcode ~decode_cache:true ~jit:false in
  assert_lockstep "jit self-modifying opcode" ~ticks:40 compiled interpreted;
  assert_jit_exercised "jit self-modifying opcode" compiled;
  Helpers.check_int "the patched-in inc dx executed" 1
    (Helpers.regs compiled).Ssx.Registers.dx

(* A jmp-heavy guest whose hot path is a cycle of tiny blocks linked by
   unconditional [jmp]s — the block-chaining case: after the first
   iteration every jmp crossing should re-enter compiled code through
   the cached successor pointer, with no table probe.  Mid-run the
   guest patches the two nops at [target] — the *interior of a chained
   block* — into [inc dx]: the stale chain pointer must fail
   revalidation and force a retranslation, not execute stale code. *)
let chained_jmp_guest ~decode_cache ~jit =
  let patch_word =
    match Ssx.Codec.encode (Ssx.Instruction.Inc_r16 Ssx.Registers.DX) with
    | [ opcode; operand ] -> opcode lor (operand lsl 8)
    | _ -> Alcotest.fail "inc dx is expected to encode in two bytes"
  in
  let source =
    "start:\n\
    \    mov ax, cs\n\
    \    mov ds, ax\n\
    \    mov dx, 0\n\
    \    mov cx, 60\n\
     hub:\n\
    \    inc si\n\
    \    jmp spoke_a\n\
     spoke_a:\n\
    \    inc bx\n\
    \    jmp spoke_b\n\
     spoke_b:\n\
    \    cmp cx, 30\n\
    \    jne skip_patch\n\
    \    mov ax, PATCH_WORD\n\
    \    mov [target], ax\n\
     skip_patch:\n\
    \    jmp spoke_c\n\
     spoke_c:\n\
     target:\n\
    \    nop\n\
    \    nop\n\
    \    jmp tail\n\
     tail:\n\
    \    loop hub\n\
    \    hlt\n"
  in
  let machine, _ =
    Helpers.machine_with ~symbols:[ ("PATCH_WORD", patch_word) ] ~decode_cache
      ~jit source
  in
  machine

let test_jit_block_chaining () =
  let compiled = chained_jmp_guest ~decode_cache:true ~jit:true in
  let interpreted = chained_jmp_guest ~decode_cache:true ~jit:false in
  assert_lockstep "jit block chaining" ~ticks:1_000 compiled interpreted;
  assert_jit_exercised "jit block chaining" compiled;
  (* The patch lands with 30 iterations left, so the patched-in
     [inc dx] runs exactly 30 times. *)
  Helpers.check_int "the patched chained block took effect" 30
    (Helpers.regs compiled).Ssx.Registers.dx;
  match Ssx.Machine.jit compiled with
  | None -> Alcotest.fail "jit machine has no block compiler"
  | Some jit ->
    (* ~4 jmp crossings per iteration over ~60 iterations: chaining
       must dominate block entry on the hot path, not fire once. *)
    Helpers.check_bool "chained entries dominate the jmp cycle" true
      (Ssx.Block_compiler.chained jit > 100);
    Helpers.check_bool "the patched chain target was re-translated" true
      (Ssx.Block_compiler.retranslations jit > 0)

let test_jit_cross_block_patch () =
  let compiled = cross_block_patch ~decode_cache:true ~jit:true in
  let interpreted = cross_block_patch ~decode_cache:true ~jit:false in
  assert_lockstep "jit cross-block patch" ~ticks:80 compiled interpreted;
  assert_jit_exercised "jit cross-block patch" compiled;
  (* The target block runs three times and the patch (one two-byte
     [inc dx] over both nops) lands after its second pass, so only the
     final pass increments dx. *)
  Helpers.check_int "the cross-block patch took effect" 1
    (Helpers.regs compiled).Ssx.Registers.dx;
  (match Ssx.Machine.jit compiled with
  | Some jit ->
    Helpers.check_bool "the condemned block was re-translated" true
      (Ssx.Block_compiler.retranslations jit > 0)
  | None -> Alcotest.fail "jit machine has no block compiler")

(* --- NMI in the middle of a block ------------------------------------ *)

(* A long straight-line run compiles into one block; NMIs raised at
   ticks that land mid-block must be accepted at exactly the same
   instruction boundary as in the interpreter, the handler must run,
   and the block must resume correctly from its interior. *)
let test_jit_nmi_mid_block () =
  let source =
    "start:\n\
    \    mov ax, cs\n\
    \    mov ds, ax\n\
    \    mov bx, 0\n\
     loop_top:\n\
    \    inc bx\n\
    \    inc bx\n\
    \    inc bx\n\
    \    inc bx\n\
    \    inc bx\n\
    \    inc bx\n\
    \    inc bx\n\
    \    inc bx\n\
    \    jmp loop_top\n\
     handler:\n\
    \    inc dx\n\
    \    iret\n"
  in
  let build ~jit =
    let machine, image = Helpers.machine_with ~decode_cache:true ~jit source in
    (* The default CPU config dispatches NMIs through a hardwired IDT at
       0xF0000; point vector 2 at the handler. *)
    let mem = Ssx.Machine.memory machine in
    let handler_ip =
      List.assoc "handler" image.Ssx_asm.Assemble.symbols
    in
    Ssx.Memory.write_word mem (0xF0000 + (4 * 2)) handler_ip;
    Ssx.Memory.write_word mem (0xF0000 + (4 * 2) + 2) 0x1000;
    machine
  in
  let compiled = build ~jit:true in
  let interpreted = build ~jit:false in
  for tick = 1 to 400 do
    (* A prime stride so the NMI lands at every offset within the
       8-instruction straight-line body over the course of the run. *)
    if tick mod 13 = 0 then begin
      Ssx.Cpu.raise_nmi (Ssx.Machine.cpu compiled);
      Ssx.Cpu.raise_nmi (Ssx.Machine.cpu interpreted)
    end;
    let ec = Ssx.Machine.tick compiled in
    let ei = Ssx.Machine.tick interpreted in
    if ec <> ei then
      Alcotest.failf "jit nmi mid-block: diverged at tick %d: jit %a, plain %a"
        tick pp_event ec pp_event ei
  done;
  let sc = Ssx.Snapshot.capture compiled in
  let si = Ssx.Snapshot.capture interpreted in
  Helpers.check_string "same final digest" (Ssx.Snapshot.digest si)
    (Ssx.Snapshot.digest sc);
  assert_jit_exercised "jit nmi mid-block" compiled;
  Helpers.check_bool "the handler actually ran" true
    ((Helpers.regs compiled).Ssx.Registers.dx > 0)

(* --- fused superinstruction pairs ------------------------------------ *)

(* The per-tick lockstep tests above drive [Machine.tick], which steps
   one op at a time; the fused two-op superinstructions only fire
   inside the quiet run loops used by [Machine.run].  These tests
   drive [Machine.run] in odd-sized chunks so the quiet loops see
   budgets that end mid-pair (fuel = 1 with a pair available), forcing
   the single-op fallback at chunk boundaries, and compare full
   snapshot digests against the plain interpreter after every chunk. *)

let fused_chunks = [ 7; 1; 13; 2; 1; 97; 3; 251; 499; 1021; 4999 ]

(* A guest dominated by fusible pairs: back-to-back register loads
   (mov/mov), a dec/jnz counted inner loop, and a cmp/je loop exit —
   one of each specialized [fuse] shape plus generic pairs. *)
let fused_pairs_guest ~decode_cache ~jit =
  let source =
    "start:\n\
    \    mov ax, cs\n\
    \    mov ds, ax\n\
    \    mov cx, 400\n\
     outer:\n\
    \    mov ax, 3\n\
    \    mov bx, 5\n\
    \    add ax, bx\n\
    \    mov dx, 7\n\
     inner:\n\
    \    dec dx\n\
    \    jnz inner\n\
    \    add si, ax\n\
    \    cmp cx, 1\n\
    \    je finish\n\
    \    dec cx\n\
    \    jmp outer\n\
     finish:\n\
    \    hlt\n"
  in
  let machine, _ = Helpers.machine_with ~decode_cache ~jit source in
  machine

let assert_fused_exercised name machine =
  match Ssx.Machine.jit machine with
  | None -> Alcotest.failf "%s: jit machine has no block compiler" name
  | Some jit ->
    Helpers.check_bool
      (name ^ ": superinstructions actually fired")
      true
      (Ssx.Block_compiler.fused_ticks jit > 0)

let chunked_run_differential name build =
  let compiled = build ~decode_cache:true ~jit:true in
  let interpreted = build ~decode_cache:true ~jit:false in
  List.iteri
    (fun i ticks ->
      Ssx.Machine.run compiled ~ticks;
      Ssx.Machine.run interpreted ~ticks;
      let dc = Ssx.Snapshot.digest (Ssx.Snapshot.capture compiled) in
      let di = Ssx.Snapshot.digest (Ssx.Snapshot.capture interpreted) in
      if dc <> di then
        Alcotest.failf "%s: digests diverge after chunk %d (%d ticks)" name i
          ticks)
    fused_chunks;
  assert_fused_exercised name compiled

let test_fused_pairs_quiet () =
  chunked_run_differential "fused pairs, no devices" fused_pairs_guest

(* Same discipline through [run_quiet_dev]: the reinstall system has a
   watchdog device ticking between the two halves of every pair, and
   its NMIs land mid-pair, exercising the pending-tick fallback. *)
let test_fused_pairs_device_path () =
  chunked_run_differential "fused pairs, watchdog device"
    reinstall_restart

(* --- direct cache behaviour ------------------------------------------ *)

let test_invalidation_sources () =
  let machine = Ssx.Machine.create ~jit:false () in
  let mem = Ssx.Machine.memory machine in
  let cache =
    match Ssx.Machine.decode_cache machine with
    | Some cache -> cache
    | None -> Alcotest.fail "decode cache should be on by default"
  in
  let nop = List.hd (Ssx.Codec.encode Ssx.Instruction.Nop) in
  Ssx.Memory.write_byte mem 0x5000 nop;
  let cpu = Ssx.Machine.cpu machine in
  cpu.Ssx.Cpu.regs.Ssx.Registers.cs <- 0x500;
  cpu.Ssx.Cpu.regs.Ssx.Registers.ip <- 0;
  ignore (Ssx.Cpu.fetch_decode cpu);
  Helpers.check_int "decode filled the slot" 1
    (Ssx.Decode_cache.cached_len cache 0x5000);
  (* Plain store invalidates. *)
  Ssx.Memory.write_byte mem 0x5000 nop;
  Helpers.check_int "write_byte invalidates" 0
    (Ssx.Decode_cache.cached_len cache 0x5000);
  (* A write *into the span* of a longer cached instruction kills it. *)
  ignore (Ssx.Cpu.fetch_decode cpu);
  Ssx.Memory.write_byte mem 0x5003 0xFF;
  Helpers.check_int "span write invalidates the opcode slot" 0
    (Ssx.Decode_cache.cached_len cache 0x5000);
  (* force_write_byte (ROM installs) and load_image invalidate too. *)
  ignore (Ssx.Cpu.fetch_decode cpu);
  Ssx.Memory.force_write_byte mem 0x5000 nop;
  Helpers.check_int "force_write_byte invalidates" 0
    (Ssx.Decode_cache.cached_len cache 0x5000);
  ignore (Ssx.Cpu.fetch_decode cpu);
  Ssx.Memory.load_image mem ~base:0x5000 "\x70";
  Helpers.check_int "load_image invalidates" 0
    (Ssx.Decode_cache.cached_len cache 0x5000);
  ignore (Ssx.Cpu.fetch_decode cpu);
  Ssx.Memory.blit mem ~src:0x6000 ~dst:0x5000 ~len:1;
  Helpers.check_int "blit invalidates" 0
    (Ssx.Decode_cache.cached_len cache 0x5000)

let test_toggle_mid_run () =
  (* Disabling and re-enabling the cache mid-run never changes what the
     machine computes. *)
  let reference = self_modifying_immediate ~decode_cache:false ~jit:false in
  let toggled = self_modifying_immediate ~decode_cache:true ~jit:false in
  for tick = 1 to 60 do
    if tick = 20 then Ssx.Machine.set_decode_cache toggled false;
    if tick = 35 then Ssx.Machine.set_decode_cache toggled true;
    let et = Ssx.Machine.tick toggled and er = Ssx.Machine.tick reference in
    if et <> er then Alcotest.failf "toggle run diverged at tick %d" tick
  done;
  Helpers.check_string "same final digest"
    (Ssx.Snapshot.digest (Ssx.Snapshot.capture reference))
    (Ssx.Snapshot.digest (Ssx.Snapshot.capture toggled))

let test_jit_toggle_mid_run () =
  (* Same for the block compiler: toggling it mid-run (fresh, empty
     block table on re-enable) is invisible. *)
  let reference = self_modifying_immediate ~decode_cache:true ~jit:false in
  let toggled = self_modifying_immediate ~decode_cache:true ~jit:true in
  for tick = 1 to 60 do
    if tick = 20 then Ssx.Machine.set_jit toggled false;
    if tick = 35 then Ssx.Machine.set_jit toggled true;
    let et = Ssx.Machine.tick toggled and er = Ssx.Machine.tick reference in
    if et <> er then Alcotest.failf "jit toggle run diverged at tick %d" tick
  done;
  Helpers.check_string "same final digest"
    (Ssx.Snapshot.digest (Ssx.Snapshot.capture reference))
    (Ssx.Snapshot.digest (Ssx.Snapshot.capture toggled))

let test_protection_bitmap_matches_regions () =
  let mem = Ssx.Memory.create () in
  Ssx.Memory.protect mem { Ssx.Memory.base = 0x5000; size = 0x100 };
  Ssx.Memory.protect mem { Ssx.Memory.base = 0xF0000; size = 0x800 };
  let in_region addr { Ssx.Memory.base; size } =
    addr >= base && addr < base + size
  in
  let rng = Ssx_faults.Rng.create 0x9e3779b97f4a7c15L in
  for _ = 1 to 10_000 do
    let addr = Ssx_faults.Rng.int rng Ssx.Memory.size in
    let reference =
      List.exists (in_region addr) (Ssx.Memory.protected_regions mem)
    in
    if Ssx.Memory.is_protected mem addr <> reference then
      Alcotest.failf "bitmap disagrees with region list at %05X" addr
  done;
  (* Region boundaries, exactly. *)
  Helpers.check_bool "below base unprotected" false
    (Ssx.Memory.is_protected mem 0x4FFF);
  Helpers.check_bool "base protected" true (Ssx.Memory.is_protected mem 0x5000);
  Helpers.check_bool "last byte protected" true
    (Ssx.Memory.is_protected mem 0x50FF);
  Helpers.check_bool "past end unprotected" false
    (Ssx.Memory.is_protected mem 0x5100)

let suite =
  [ differential "reinstall/restart" ~ticks:50_000 reinstall_restart;
    differential "reinstall/continue" ~ticks:50_000 reinstall_continue;
    differential "reinstall/reset-wired" ~ticks:50_000 reinstall_reset_wired;
    differential "reinstall/journal guest" ~ticks:50_000 reinstall_journal;
    differential "reinstall/preemptive guest + timer" ~ticks:50_000
      reinstall_preemptive;
    differential "monitor/task kernel" ~ticks:50_000 monitor_tasks;
    differential "scheduler/default" ~ticks:60_000 sched_default;
    differential "scheduler/paper variant" ~ticks:60_000 sched_paper;
    differential "token ring OS" ~ticks:60_000 token_os;
    jit_differential "reinstall/restart" ~ticks:50_000 reinstall_restart;
    jit_differential "reinstall/continue" ~ticks:50_000 reinstall_continue;
    jit_differential "reinstall/reset-wired" ~ticks:50_000
      reinstall_reset_wired;
    jit_differential "reinstall/journal guest" ~ticks:50_000 reinstall_journal;
    jit_differential "reinstall/preemptive guest + timer" ~ticks:50_000
      reinstall_preemptive;
    jit_differential "monitor/task kernel" ~ticks:50_000 monitor_tasks;
    jit_differential "scheduler/default" ~ticks:60_000 sched_default;
    jit_differential "scheduler/paper variant" ~ticks:60_000 sched_paper;
    jit_differential "token ring OS" ~ticks:60_000 token_os;
    faulted "faults/reinstall, code-region corruption" ~ticks:40_000
      ~seed:0x1234L ~space:code_only_space reinstall_fault_target;
    faulted "faults/reinstall, full fault space" ~ticks:40_000 ~seed:0x5678L
      ~space:full_space reinstall_fault_target;
    faulted "faults/scheduler, code-region corruption" ~ticks:40_000
      ~seed:0x9abcL ~space:code_only_space sched_fault_target;
    jit_faulted "faults/reinstall, code-region corruption" ~ticks:40_000
      ~seed:0x1234L ~space:code_only_space reinstall_fault_target;
    jit_faulted "faults/reinstall, full fault space" ~ticks:40_000
      ~seed:0x5678L ~space:full_space reinstall_fault_target;
    jit_faulted "faults/scheduler, code-region corruption" ~ticks:40_000
      ~seed:0x9abcL ~space:code_only_space sched_fault_target;
    Helpers.case "self-modifying code: patched immediate"
      test_self_modifying_immediate;
    Helpers.case "self-modifying code: patched opcode"
      test_self_modifying_opcode;
    Helpers.case "jit self-modifying code: patched immediate"
      test_jit_self_modifying_immediate;
    Helpers.case "jit self-modifying code: patched opcode"
      test_jit_self_modifying_opcode;
    Helpers.case "jit cross-block patch" test_jit_cross_block_patch;
    Helpers.case "jit block chaining across unconditional jmps"
      test_jit_block_chaining;
    Helpers.case "jit NMI mid-block" test_jit_nmi_mid_block;
    Helpers.case "jit fused pairs: chunked quiet run" test_fused_pairs_quiet;
    Helpers.case "jit fused pairs: device path" test_fused_pairs_device_path;
    Helpers.case "every write source invalidates" test_invalidation_sources;
    Helpers.case "cache toggle mid-run is invisible" test_toggle_mid_run;
    Helpers.case "jit toggle mid-run is invisible" test_jit_toggle_mid_run;
    Helpers.case "protection bitmap matches region list"
      test_protection_bitmap_matches_regions ]
