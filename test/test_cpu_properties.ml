(* Differential properties: random programs executed by the machine are
   compared instruction-for-instruction against a host-level reference
   model of the arithmetic and the condition predicates. *)

let exec_and_read source =
  let machine = Helpers.exec source in
  let regs = Helpers.regs machine in
  ( regs.Ssx.Registers.ax,
    Helpers.flag machine Ssx.Flags.Carry,
    Helpers.flag machine Ssx.Flags.Zero,
    Helpers.flag machine Ssx.Flags.Sign )

let word_gen = QCheck.map (fun v -> v land 0xffff) QCheck.int

(* Reference semantics of the binary ALU operations on 16-bit words. *)
let reference op a b =
  match op with
  | "add" ->
    let sum = a + b in
    (sum land 0xffff, sum > 0xffff)
  | "sub" ->
    let diff = a - b in
    (diff land 0xffff, diff < 0)
  | "and" -> (a land b, false)
  | "or" -> (a lor b, false)
  | "xor" -> (a lxor b, false)
  | _ -> assert false

let alu_property op =
  QCheck.Test.make ~count:200
    ~name:(Printf.sprintf "%s matches the reference model" op)
    (QCheck.pair word_gen word_gen)
    (fun (a, b) ->
      let source =
        Printf.sprintf "mov ax, 0x%04X\n%s ax, 0x%04X\nhlt\n" a op b
      in
      let ax, carry, zero, sign = exec_and_read source in
      let expected, expected_carry = reference op a b in
      ax = expected && carry = expected_carry && zero = (expected = 0)
      && sign = (expected land 0x8000 <> 0))

let prop_cmp_is_sub_without_store =
  QCheck.Test.make ~count:200 ~name:"cmp sets flags like sub, keeps ax"
    (QCheck.pair word_gen word_gen)
    (fun (a, b) ->
      let source = Printf.sprintf "mov ax, 0x%04X\ncmp ax, 0x%04X\nhlt\n" a b in
      let ax, carry, zero, _ = exec_and_read source in
      let _, expected_carry = reference "sub" a b in
      ax = a && carry = expected_carry && zero = (a = b))

let prop_mul8_reference =
  QCheck.Test.make ~count:200 ~name:"mul ah is al * ah"
    (QCheck.pair (QCheck.int_bound 0xFF) (QCheck.int_bound 0xFF))
    (fun (a, b) ->
      let source = Printf.sprintf "mov al, 0x%02X\nmov ah, 0x%02X\nmul ah\nhlt\n" a b in
      let ax, carry, _, _ = exec_and_read source in
      ax = a * b && carry = (a * b > 0xFF))

let prop_div8_reference =
  QCheck.Test.make ~count:200 ~name:"div cl quotient and remainder"
    (QCheck.pair (QCheck.int_bound 0xFFFF) (QCheck.int_range 1 255))
    (fun (a, b) ->
      QCheck.assume (a / b <= 0xFF);
      let source = Printf.sprintf "mov ax, 0x%04X\nmov cl, 0x%02X\ndiv cl\nhlt\n" a b in
      let ax, _, _, _ = exec_and_read source in
      Ssx.Word.low_byte ax = a / b && Ssx.Word.high_byte ax = a mod b)

let prop_shifts_reference =
  QCheck.Test.make ~count:200 ~name:"shl/shr match the reference"
    (QCheck.pair word_gen (QCheck.int_range 1 15))
    (fun (a, n) ->
      let left =
        let source = Printf.sprintf "mov ax, 0x%04X\nshl ax, %d\nhlt\n" a n in
        let ax, _, _, _ = exec_and_read source in
        ax = (a lsl n) land 0xffff
      in
      let right =
        let source = Printf.sprintf "mov ax, 0x%04X\nshr ax, %d\nhlt\n" a n in
        let ax, _, _, _ = exec_and_read source in
        ax = a lsr n
      in
      left && right)

(* Condition predicates: load an arbitrary psw with popf, branch, and
   compare the taken/not-taken outcome with the reference predicate. *)
let reference_cond psw cond =
  let flag f = psw land (1 lsl Ssx.Flags.bit f) <> 0 in
  let cf = flag Ssx.Flags.Carry
  and zf = flag Ssx.Flags.Zero
  and sf = flag Ssx.Flags.Sign
  and off = flag Ssx.Flags.Overflow in
  match cond with
  | Ssx.Instruction.B -> cf
  | Ssx.Instruction.NB -> not cf
  | Ssx.Instruction.BE -> cf || zf
  | Ssx.Instruction.A -> not (cf || zf)
  | Ssx.Instruction.E -> zf
  | Ssx.Instruction.NE -> not zf
  | Ssx.Instruction.L -> sf <> off
  | Ssx.Instruction.GE -> sf = off
  | Ssx.Instruction.LE -> zf || sf <> off
  | Ssx.Instruction.G -> (not zf) && sf = off
  | Ssx.Instruction.S -> sf
  | Ssx.Instruction.NS -> not sf
  | Ssx.Instruction.O -> off
  | Ssx.Instruction.NO -> not off

let prop_conditions_truth_table =
  let show (psw, c) =
    Printf.sprintf "psw=0x%04X cond=%s" psw (Ssx.Instruction.cond_name c)
  in
  QCheck.Test.make ~count:400 ~name:"conditional jumps match the predicate table"
    (QCheck.make ~print:show
       QCheck.Gen.(pair (map (fun v -> v land 0xffff) int) (oneofl Ssx.Instruction.all_conds)))
    (fun (psw, cond) ->
      let source =
        Printf.sprintf
          "mov ax, 0x%04X\npush ax\npopf\nj%s taken\nmov bx, 0\nhlt\n\
           taken:\nmov bx, 1\nhlt\n"
          psw
          (Ssx.Instruction.cond_name cond)
      in
      let machine = Helpers.exec source in
      let taken = (Helpers.regs machine).Ssx.Registers.bx = 1 in
      taken = reference_cond psw cond)

let prop_inc_dec_roundtrip =
  QCheck.Test.make ~count:200 ~name:"inc then dec is the identity"
    word_gen
    (fun a ->
      let source = Printf.sprintf "mov ax, 0x%04X\ninc ax\ndec ax\nhlt\n" a in
      let ax, _, _, _ = exec_and_read source in
      ax = a)

let prop_push_pop_roundtrip =
  QCheck.Test.make ~count:200 ~name:"push/pop roundtrips any word"
    word_gen
    (fun a ->
      let source = Printf.sprintf "mov ax, 0x%04X\npush ax\npop bx\nhlt\n" a in
      let machine = Helpers.exec source in
      (Helpers.regs machine).Ssx.Registers.bx = a)

let prop_neg_not =
  QCheck.Test.make ~count:200 ~name:"neg and not match two's complement"
    word_gen
    (fun a ->
      let neg =
        let machine = Helpers.exec (Printf.sprintf "mov ax, 0x%04X\nneg ax\nhlt\n" a) in
        (Helpers.regs machine).Ssx.Registers.ax = (-a) land 0xffff
      in
      let not_ =
        let machine = Helpers.exec (Printf.sprintf "mov ax, 0x%04X\nnot ax\nhlt\n" a) in
        (Helpers.regs machine).Ssx.Registers.ax = lnot a land 0xffff
      in
      neg && not_)

let suite =
  List.map QCheck_alcotest.to_alcotest
    ([ alu_property "add"; alu_property "sub"; alu_property "and";
       alu_property "or"; alu_property "xor" ]
    @ [ prop_cmp_is_sub_without_store; prop_mul8_reference; prop_div8_reference;
        prop_shifts_reference; prop_conditions_truth_table;
        prop_inc_dec_roundtrip; prop_push_pop_roundtrip; prop_neg_not ])
