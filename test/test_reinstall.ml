let case = Helpers.case
let check_int = Helpers.check_int
let check_bool = Helpers.check_bool

let beats system = Ssx_devices.Heartbeat.count system.Ssos.System.heartbeat
let samples system = Ssx_devices.Heartbeat.samples system.Ssos.System.heartbeat

let test_boots_from_reset () =
  let system = Ssos.Reinstall.build () in
  Ssos.System.run system ~ticks:10_000;
  check_bool "guest started beating" true (beats system > 10);
  match samples system with
  | first :: _ ->
    check_int "first beat is 1" 1 first.Ssx_devices.Heartbeat.value;
    (* Boot = reset stub + figure 1 = roughly IMAGE_SIZE ticks. *)
    check_bool "boot took about one reinstall" true
      (first.Ssx_devices.Heartbeat.tick > Ssos.Layout.os_image_size
      && first.Ssx_devices.Heartbeat.tick < Ssos.Layout.os_image_size + 1_000)
  | [] -> Alcotest.fail "no heartbeats"

let test_periodic_restart_resets_counter () =
  let system = Ssos.Reinstall.build ~watchdog_period:10_000 () in
  Ssos.System.run system ~ticks:40_000;
  let restarts =
    List.length
      (List.filter (fun s -> s.Ssx_devices.Heartbeat.value = 1) (samples system))
  in
  check_bool "counter restarted several times" true (restarts >= 3)

let test_recovers_from_ram_smash () =
  (* The paper's Bochs experiment: corrupt the RAM image under the guest. *)
  let system = Ssos.Reinstall.build () in
  Ssos.System.run system ~ticks:10_000;
  let mem = Ssx.Machine.memory system.Ssos.System.machine in
  for i = 0 to Ssos.Layout.os_image_size - 1 do
    Ssx.Memory.write_byte mem ((Ssos.Layout.os_segment lsl 4) + i) 0xFF
  done;
  Ssos.System.run system ~ticks:120_000;
  let spec = Ssos.Reinstall.weak_spec () in
  let verdict =
    Ssx_stab.Convergence.judge ~spec ~samples:(samples system)
      ~end_tick:(Ssx.Machine.ticks system.Ssos.System.machine)
  in
  check_bool "stabilized" true (Ssx_stab.Convergence.converged verdict)

let test_recovers_from_scrambled_processor () =
  (* Arbitrary initial configuration, the core self-stabilization claim. *)
  let rng = Ssx_faults.Rng.create 99L in
  for _ = 1 to 10 do
    let system = Ssos.Reinstall.build () in
    Ssos.System.run system ~ticks:5_000;
    Ssos_experiments.Runner.scramble_processor rng system;
    Ssos.System.run system ~ticks:150_000;
    let spec = Ssos.Reinstall.weak_spec () in
    let verdict =
      Ssx_stab.Convergence.judge ~spec ~samples:(samples system)
        ~end_tick:(Ssx.Machine.ticks system.Ssos.System.machine)
    in
    check_bool "stabilized from arbitrary state" true
      (Ssx_stab.Convergence.converged verdict)
  done

let test_rom_is_protected () =
  let system = Ssos.Reinstall.build () in
  let mem = Ssx.Machine.memory system.Ssos.System.machine in
  let before = Ssx.Memory.read_byte mem Ssos.Layout.rom_base in
  Ssx.Memory.write_byte mem Ssos.Layout.rom_base (before lxor 0xFF);
  check_int "ROM unchanged" before (Ssx.Memory.read_byte mem Ssos.Layout.rom_base)

let test_exceptions_reinstall () =
  (* Wild jump into zeroed RAM -> invalid opcode -> reinstall. *)
  let system = Ssos.Reinstall.build () in
  Ssos.System.run system ~ticks:10_000;
  let regs = (Ssx.Machine.cpu system.Ssos.System.machine).Ssx.Cpu.regs in
  regs.Ssx.Registers.cs <- 0x7000;
  regs.Ssx.Registers.ip <- 0;
  let before = beats system in
  Ssos.System.run system ~ticks:10_000;
  check_bool "came back well before the watchdog period" true
    (beats system > before)

let test_continue_variant_resumes () =
  (* The continue handler must return to the interrupted instruction
     stream rather than the entry point: after a mid-run NMI the
     heartbeat continues from 1 (data reinstalled) but without the
     boot-sized gap a restart would show. *)
  let system =
    Ssos.Reinstall.build ~variant:Ssos.Reinstall.Continue ~watchdog_period:10_000 ()
  in
  Ssos.System.run system ~ticks:35_000;
  let restarted_values =
    List.filter (fun s -> s.Ssx_devices.Heartbeat.value = 1) (samples system)
  in
  (* Data was refreshed by each of the three NMIs: counter restarts... *)
  check_bool "data refresh restarts the count" true
    (List.length restarted_values >= 3);
  (* ...but execution continued: between two successive beats there is
     never a gap as large as a full reinstall plus the loop. *)
  let rec max_gap acc = function
    | a :: (b :: _ as rest) ->
      max_gap (max acc (b.Ssx_devices.Heartbeat.tick - a.Ssx_devices.Heartbeat.tick)) rest
    | _ -> acc
  in
  let gap = max_gap 0 (samples system) in
  check_bool "no restart-sized pause" true
    (gap < Ssos.Layout.os_image_size + 600)

let test_weak_vs_strict_specs () =
  let weak = Ssos.Reinstall.weak_spec () in
  let strict = Ssos.Reinstall.strict_spec () in
  check_bool "restart legal weakly" true (weak.Ssx_stab.Convergence.legal_step 500 1);
  check_bool "restart illegal strictly" false
    (strict.Ssx_stab.Convergence.legal_step 500 1);
  check_bool "increment legal in both" true
    (weak.Ssx_stab.Convergence.legal_step 7 8
    && strict.Ssx_stab.Convergence.legal_step 7 8)

let test_watchdog_fault_still_recovers () =
  let system = Ssos.Reinstall.build () in
  Ssos.System.run system ~ticks:10_000;
  (match system.Ssos.System.watchdog with
  | Some wd -> Ssx_devices.Watchdog.corrupt wd 123_456_789
  | None -> Alcotest.fail "watchdog expected");
  let mem = Ssx.Machine.memory system.Ssos.System.machine in
  Ssx.Memory.write_byte mem ((Ssos.Layout.os_segment lsl 4) + 2) 0xEA;
  Ssos.System.run system ~ticks:150_000;
  let spec = Ssos.Reinstall.weak_spec () in
  check_bool "recovered despite watchdog corruption" true
    (Ssx_stab.Convergence.converged
       (Ssx_stab.Convergence.judge ~spec ~samples:(samples system)
          ~end_tick:(Ssx.Machine.ticks system.Ssos.System.machine)))

let suite =
  [ case "boots from reset through figure 1" test_boots_from_reset;
    case "periodic restart resets the counter" test_periodic_restart_resets_counter;
    case "recovers from a full RAM smash" test_recovers_from_ram_smash;
    case "recovers from arbitrary processor states" test_recovers_from_scrambled_processor;
    case "ROM is write-protected" test_rom_is_protected;
    case "exceptions trigger reinstall" test_exceptions_reinstall;
    case "continue variant resumes execution" test_continue_variant_resumes;
    case "weak vs strict specifications" test_weak_vs_strict_specs;
    case "watchdog corruption is survived" test_watchdog_fault_still_recovers ]
