let case = Helpers.case
let check_int = Helpers.check_int
let check_bool = Helpers.check_bool

let test_ring_processes_pass_checker () =
  for index = 0 to 3 do
    let p = Ssos.Token_os.ring_process ~n:4 ~index in
    let plain = Ssos.Process.assemble_plain p in
    match
      Ssos.Process.validate ~model:Ssos.Process.Scheduled
        ~code_len:(String.length plain.Ssx_asm.Assemble.bytes)
        plain.Ssx_asm.Assemble.bytes
    with
    | Ok () -> ()
    | Error problems ->
      Alcotest.failf "ring-%d violations: %s" index (String.concat "; " problems)
  done

let test_zero_state_is_legitimate () =
  (* All counters zero = one privilege at the bottom machine. *)
  let sched = Ssos.Token_os.build () in
  check_bool "legitimate" true (Ssos.Token_os.legitimate sched)

let test_token_circulates_on_the_os () =
  let sched = Ssos.Token_os.build () in
  Ssx.Machine.run sched.Ssos.Sched.machine ~ticks:500_000;
  check_bool "still exactly one token" true (Ssos.Token_os.legitimate sched);
  (* Every machine moved at least once: the token went around. *)
  Array.iteri
    (fun i hb ->
      check_bool
        (Printf.sprintf "machine %d moved" i)
        true
        (Ssx_devices.Heartbeat.count hb > 0))
    sched.Ssos.Sched.heartbeats

let test_converges_from_corrupt_counters () =
  let sched = Ssos.Token_os.build () in
  Ssx.Machine.run sched.Ssos.Sched.machine ~ticks:100_000;
  Ssos.Token_os.corrupt_state sched 1 5;
  Ssos.Token_os.corrupt_state sched 3 2;
  check_bool "multiple privileges" true
    (Ssos.Token_os.token_count ~states:(Ssos.Token_os.states sched) > 1);
  match Ssos.Token_os.run_until_legitimate sched ~limit:2_000_000 with
  | Some _ -> ()
  | None -> Alcotest.fail "ring did not re-stabilize on the tiny OS"

let test_closure_on_the_os () =
  let sched = Ssos.Token_os.build () in
  Ssx.Machine.run sched.Ssos.Sched.machine ~ticks:100_000;
  (* Sample legitimacy along the run: once legitimate, always. *)
  for _ = 1 to 20 do
    Ssx.Machine.run sched.Ssos.Sched.machine ~ticks:25_000;
    check_bool "closure" true (Ssos.Token_os.legitimate sched)
  done

let test_privilege_helpers () =
  check_int "all equal: only bottom" 1
    (Ssos.Token_os.token_count ~states:[| 3; 3; 3; 3 |]);
  check_int "one step taken" 1
    (Ssos.Token_os.token_count ~states:[| 4; 3; 3; 3 |]);
  check_bool "machine 1 privileged" true
    (Ssos.Token_os.privileged ~states:[| 4; 3; 3; 3 |] 1);
  check_bool "bottom not privileged" false
    (Ssos.Token_os.privileged ~states:[| 4; 3; 3; 3 |] 0)

let test_survives_scheduler_corruption () =
  let sched = Ssos.Token_os.build () in
  let mem = Ssx.Machine.memory sched.Ssos.Sched.machine in
  Ssx.Machine.run sched.Ssos.Sched.machine ~ticks:100_000;
  Ssx.Memory.write_word mem Ssos.Sched.process_index_addr 0xFFFF;
  Ssx.Memory.write_word mem (Ssos.Sched.process_record_addr 2 + 2) 0x4141;
  Ssos.Token_os.corrupt_state sched 1 7;
  match Ssos.Token_os.run_until_legitimate sched ~limit:2_000_000 with
  | Some _ ->
    Ssx.Machine.run sched.Ssos.Sched.machine ~ticks:200_000;
    check_bool "legitimate and stable" true (Ssos.Token_os.legitimate sched)
  | None -> Alcotest.fail "did not recover from joint corruption"

let test_small_ring_validation () =
  check_bool "n = 1 rejected" true
    (match Ssos.Token_os.ring_process ~n:1 ~index:0 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let suite =
  [ case "ring processes pass the restriction checker"
      test_ring_processes_pass_checker;
    case "zero state is legitimate" test_zero_state_is_legitimate;
    case "the token circulates on the OS" test_token_circulates_on_the_os;
    case "converges from corrupted counters" test_converges_from_corrupt_counters;
    case "closure of legitimacy" test_closure_on_the_os;
    case "privilege helpers" test_privilege_helpers;
    case "survives joint scheduler corruption" test_survives_scheduler_corruption;
    case "ring size validated" test_small_ring_validation ]
