(* The §4 monitor generalised to a second, structurally different guest:
   the journal kernel, protected by build_custom + journal predicates. *)

let case = Helpers.case
let check_int = Helpers.check_int
let check_bool = Helpers.check_bool

let build () =
  Ssos.Monitor.build_custom ~guest:(Ssos.Guest.journal_kernel ())
    ~predicates:(Ssos.Monitor.journal_predicates ())
    ()

let samples monitor =
  Ssx_devices.Heartbeat.samples monitor.Ssos.Monitor.system.Ssos.System.heartbeat

let end_tick monitor =
  Ssx.Machine.ticks monitor.Ssos.Monitor.system.Ssos.System.machine

let strictly_legal monitor =
  Ssx_stab.Convergence.converged
    (Ssx_stab.Convergence.judge ~spec:(Ssos.Monitor.spec ())
       ~samples:(samples monitor) ~end_tick:(end_tick monitor))

let mem monitor = Ssx.Machine.memory monitor.Ssos.Monitor.system.Ssos.System.machine

let test_journal_runs_clean () =
  let monitor = build () in
  Ssos.System.run monitor.Ssos.Monitor.system ~ticks:150_000;
  check_bool "strongly legal" true (strictly_legal monitor);
  check_int "no detections" 0 (List.length (Ssos.Monitor.detections monitor))

let test_journal_entries_are_consistent () =
  let monitor = build () in
  Ssos.System.run monitor.Ssos.Monitor.system ~ticks:60_000;
  let mem = mem monitor in
  (* Every written slot must carry seq xor MAC. *)
  for i = 0 to Ssos.Guest.journal_slots - 1 do
    let seq = Ssx.Memory.read_word mem (Ssos.Guest.journal_addr + (4 * i)) in
    let mac = Ssx.Memory.read_word mem (Ssos.Guest.journal_addr + (4 * i) + 2) in
    if seq <> 0 then
      check_int (Printf.sprintf "slot %d mac" i) (seq lxor Ssos.Guest.journal_mac) mac
  done;
  check_bool "pointer in range" true
    (Ssx.Memory.read_word mem Ssos.Guest.write_ptr_addr < Ssos.Guest.journal_slots)

let test_write_ptr_repaired () =
  let monitor = build () in
  Ssos.System.run monitor.Ssos.Monitor.system ~ticks:60_000;
  Ssx.Memory.write_word (mem monitor) Ssos.Guest.write_ptr_addr 0x4141;
  Ssos.System.run monitor.Ssos.Monitor.system ~ticks:200_000;
  check_bool "detected" true
    (List.exists
       (fun d -> List.mem "journal-write-ptr-in-range" d.Ssos.Monitor.violated)
       (Ssos.Monitor.detections monitor));
  check_bool "repaired" true
    (Ssx.Memory.read_word (mem monitor) Ssos.Guest.write_ptr_addr
    < Ssos.Guest.journal_slots);
  check_bool "legal again" true (strictly_legal monitor)

let test_mac_repaired () =
  (* The kernel overwrites the whole ring every ~1.1k ticks, so a
     corrupted MAC usually self-heals before the next NMI check; the
     predicate's detect/repair semantics are therefore exercised
     directly (the monitor calls exactly this code at each check). *)
  let monitor = build () in
  let machine = monitor.Ssos.Monitor.system.Ssos.System.machine in
  Ssos.System.run monitor.Ssos.Monitor.system ~ticks:60_000;
  let slot = Ssos.Guest.journal_addr + 8 in
  let seq = Ssx.Memory.read_word (mem monitor) slot in
  check_bool "slot written" true (seq <> 0);
  Ssx.Memory.write_word (mem monitor) (slot + 2) (seq lxor 0x1111);
  let violated =
    Ssx_stab.Predicate.check_and_repair (Ssos.Monitor.journal_predicates ())
      machine
  in
  check_bool "detected" true
    (List.exists
       (fun p -> p.Ssx_stab.Predicate.name = "journal-entry-macs")
       violated);
  check_int "mac recomputed" (seq lxor Ssos.Guest.journal_mac)
    (Ssx.Memory.read_word (mem monitor) (slot + 2))

let test_recovers_from_bursts () =
  let rng = Ssx_faults.Rng.create 63L in
  let spec = Ssos.Monitor.spec () in
  for _ = 1 to 8 do
    let monitor = build () in
    Ssos.System.run monitor.Ssos.Monitor.system ~ticks:30_000;
    ignore
      (Ssx_faults.Injector.inject_now
         (Ssos.System.fault_system monitor.Ssos.Monitor.system)
         ~rng ~space:Ssos.System.default_fault_space 40);
    Ssos.System.run monitor.Ssos.Monitor.system ~ticks:300_000;
    check_bool "recovered" true
      (Ssx_stab.Convergence.converged
         (Ssx_stab.Convergence.judge ~spec ~samples:(samples monitor)
            ~end_tick:(end_tick monitor)))
  done

let test_without_code_integrity () =
  let monitor =
    Ssos.Monitor.build_custom ~guest:(Ssos.Guest.journal_kernel ())
      ~predicates:(Ssos.Monitor.journal_predicates ())
      ~code_integrity:false ()
  in
  check_int "two predicates only" 2 (List.length monitor.Ssos.Monitor.predicates)

let suite =
  [ case "journal kernel runs strongly legal" test_journal_runs_clean;
    case "journal entries carry valid MACs" test_journal_entries_are_consistent;
    case "write pointer detected and repaired" test_write_ptr_repaired;
    case "corrupted MAC detected and recomputed" test_mac_repaired;
    case "recovers from fault bursts" test_recovers_from_bursts;
    case "code-integrity predicate is optional" test_without_code_integrity ]
