let case = Helpers.case
let check_int = Helpers.check_int
let check_bool = Helpers.check_bool

(* Small graphs used across the tests. *)
let path n =
  Array.init n (fun v ->
      List.filter (fun w -> w >= 0 && w < n) [ v - 1; v + 1 ])

let cycle n = Array.init n (fun v -> [ (v + n - 1) mod n; (v + 1) mod n ])

let complete n =
  Array.init n (fun v -> List.filter (fun w -> w <> v) (List.init n Fun.id))

let random_graph rng n p =
  let adj = Array.make n [] in
  for v = 0 to n - 1 do
    for w = v + 1 to n - 1 do
      if Ssx_faults.Rng.float rng < p then begin
        adj.(v) <- w :: adj.(v);
        adj.(w) <- v :: adj.(w)
      end
    done
  done;
  adj

(* ---------------------------- BFS tree ---------------------------- *)

let test_bfs_converges_on_path () =
  let t = Ssos_algorithms.Bfs_tree.create ~graph:(path 6) ~root:0 in
  match Ssos_algorithms.Bfs_tree.rounds_to_stabilize t ~max_rounds:20 with
  | Some rounds ->
    check_bool "within diameter-ish rounds" true (rounds <= 12);
    check_bool "legitimate" true (Ssos_algorithms.Bfs_tree.legitimate t);
    Alcotest.(check (array int)) "distances" [| 0; 1; 2; 3; 4; 5 |]
      (Ssos_algorithms.Bfs_tree.distances t)
  | None -> Alcotest.fail "did not stabilize"

let test_bfs_parents_point_home () =
  let t = Ssos_algorithms.Bfs_tree.create ~graph:(cycle 8) ~root:2 in
  ignore (Ssos_algorithms.Bfs_tree.rounds_to_stabilize t ~max_rounds:30);
  let parents = Ssos_algorithms.Bfs_tree.parents t in
  let distances = Ssos_algorithms.Bfs_tree.distances t in
  Array.iteri
    (fun v p ->
      if v <> 2 then
        check_int (Printf.sprintf "parent of %d is one closer" v)
          (distances.(v) - 1) distances.(p))
    parents

let test_bfs_recovers_from_underestimates () =
  (* Corrupted-low distances are the hard case: they must float up. *)
  let t = Ssos_algorithms.Bfs_tree.create ~graph:(path 6) ~root:0 in
  ignore (Ssos_algorithms.Bfs_tree.rounds_to_stabilize t ~max_rounds:20);
  Ssos_algorithms.Bfs_tree.set_distance t 5 0;
  check_bool "now illegitimate" false (Ssos_algorithms.Bfs_tree.legitimate t);
  match Ssos_algorithms.Bfs_tree.rounds_to_stabilize t ~max_rounds:30 with
  | Some _ -> check_bool "recovered" true (Ssos_algorithms.Bfs_tree.legitimate t)
  | None -> Alcotest.fail "under-estimate never flushed"

let test_bfs_validation () =
  check_bool "root out of range" true
    (match Ssos_algorithms.Bfs_tree.create ~graph:(path 3) ~root:9 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let prop_bfs_converges_random =
  QCheck.Test.make ~count:100 ~name:"BFS tree converges on random graphs"
    (QCheck.pair (QCheck.int_range 2 12) QCheck.int)
    (fun (n, seed) ->
      let rng = Ssx_faults.Rng.create (Int64.of_int seed) in
      let graph = random_graph rng n 0.4 in
      let t = Ssos_algorithms.Bfs_tree.create ~graph ~root:0 in
      (* Corrupt everything. *)
      for v = 0 to n - 1 do
        Ssos_algorithms.Bfs_tree.set_distance t v (Ssx_faults.Rng.int rng 50)
      done;
      match
        Ssos_algorithms.Bfs_tree.rounds_to_stabilize t ~max_rounds:(4 * n + 60)
      with
      | Some _ -> Ssos_algorithms.Bfs_tree.legitimate t
      | None -> false)

(* ---------------------------- colouring --------------------------- *)

let test_coloring_path () =
  let t = Ssos_algorithms.Coloring.create ~graph:(path 7) in
  check_bool "starts conflicting" true (Ssos_algorithms.Coloring.conflict_edges t > 0);
  match Ssos_algorithms.Coloring.moves_to_stabilize t ~max_moves:100 with
  | Some moves ->
    check_bool "bounded by |E|" true (moves <= 6);
    check_bool "proper" true (Ssos_algorithms.Coloring.legitimate t)
  | None -> Alcotest.fail "did not stabilize"

let test_coloring_uses_at_most_delta_plus_one () =
  let graph = complete 5 in
  let t = Ssos_algorithms.Coloring.create ~graph in
  ignore (Ssos_algorithms.Coloring.moves_to_stabilize t ~max_moves:100);
  let delta = Ssos_algorithms.Coloring.max_degree graph in
  Array.iter
    (fun c -> check_bool "within delta+1 colours" true (c <= delta))
    (Ssos_algorithms.Coloring.colors t)

let test_coloring_closure () =
  let t = Ssos_algorithms.Coloring.create ~graph:(cycle 6) in
  ignore (Ssos_algorithms.Coloring.moves_to_stabilize t ~max_moves:100);
  check_int "no further moves once proper" 0 (Ssos_algorithms.Coloring.step_round t)

let test_coloring_recovers_from_corruption () =
  let t = Ssos_algorithms.Coloring.create ~graph:(cycle 6) in
  ignore (Ssos_algorithms.Coloring.moves_to_stabilize t ~max_moves:100);
  Ssos_algorithms.Coloring.set_color t 3 (Ssos_algorithms.Coloring.colors t).(2);
  check_bool "conflict introduced" true (Ssos_algorithms.Coloring.in_conflict t 3);
  match Ssos_algorithms.Coloring.moves_to_stabilize t ~max_moves:20 with
  | Some moves -> check_bool "few moves" true (moves <= 6)
  | None -> Alcotest.fail "did not recover"

let prop_coloring_converges_random =
  QCheck.Test.make ~count:100 ~name:"colouring converges within |E| moves"
    (QCheck.pair (QCheck.int_range 2 12) QCheck.int)
    (fun (n, seed) ->
      let rng = Ssx_faults.Rng.create (Int64.of_int seed) in
      let graph = random_graph rng n 0.5 in
      let edges =
        Array.fold_left (fun acc l -> acc + List.length l) 0 graph / 2
      in
      let t = Ssos_algorithms.Coloring.create ~graph in
      for v = 0 to n - 1 do
        Ssos_algorithms.Coloring.set_color t v (Ssx_faults.Rng.int rng 4)
      done;
      match Ssos_algorithms.Coloring.moves_to_stabilize t ~max_moves:(edges + 1) with
      | Some _ -> Ssos_algorithms.Coloring.legitimate t
      | None -> false)

let suite =
  [ case "BFS converges on a path" test_bfs_converges_on_path;
    case "BFS parents point home" test_bfs_parents_point_home;
    case "BFS flushes under-estimates" test_bfs_recovers_from_underestimates;
    case "BFS validation" test_bfs_validation;
    case "colouring stabilizes on a path" test_coloring_path;
    case "colouring stays within delta+1" test_coloring_uses_at_most_delta_plus_one;
    case "colouring closure" test_coloring_closure;
    case "colouring recovers from corruption" test_coloring_recovers_from_corruption ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_bfs_converges_random; prop_coloring_converges_random ]
