(* The observability layer (lib/obs): registry semantics, the enabled
   switch, machine instrumentation end-to-end, and the Ssx.Digest
   regression pins (the dedup must reproduce the historical inline
   FNV-1a copies byte for byte). *)

let case = Helpers.case
let check_int = Helpers.check_int
let check_bool = Helpers.check_bool
let check_string = Helpers.check_string

module Obs = Ssos_obs.Obs

(* Every test leaves the registry empty and the switch off, whatever
   happens in between — the rest of the suite must stay uninstrumented. *)
let with_obs f =
  Obs.reset ();
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
    f

let find_row name =
  let snap = Obs.snapshot () in
  List.find_opt (fun (row : Obs.row) -> row.Obs.name = name) snap.Obs.rows

let counter_row name =
  match find_row name with
  | Some { Obs.value = Obs.Counter n; _ } -> n
  | Some _ -> Alcotest.failf "%s is not a counter" name
  | None -> Alcotest.failf "no row %s" name

let gauge_row name =
  match find_row name with
  | Some { Obs.value = Obs.Gauge v; _ } -> v
  | Some _ -> Alcotest.failf "%s is not a gauge" name
  | None -> Alcotest.failf "no row %s" name

(* ------------------------------------------------------- registry *)

let test_counters_and_gauges () =
  with_obs (fun () ->
      let c = Obs.counter "test.hits" in
      Obs.incr c;
      Obs.incr ~by:4 c;
      check_int "counter value" 5 (Obs.counter_value c);
      (* The registry is name-keyed: the same name is the same
         instance. *)
      Obs.incr (Obs.counter "test.hits");
      check_int "same name, same counter" 6 (Obs.counter_value c);
      let g = Obs.gauge "test.depth" in
      Obs.set g 2.5;
      Obs.set_int (Obs.gauge "test.depth") 7;
      check_bool "gauge keeps last value" true (gauge_row "test.depth" = 7.0);
      let live = ref 10 in
      Obs.sample "test.live" (fun () -> float_of_int !live);
      live := 42;
      check_bool "sampled gauge reads at snapshot time" true
        (gauge_row "test.live" = 42.0);
      check_int "counter row" 6 (counter_row "test.hits"))

let test_snapshot_rows_sorted () =
  with_obs (fun () ->
      Obs.incr (Obs.counter "z.last");
      Obs.incr (Obs.counter "a.first");
      Obs.incr (Obs.counter "m.middle");
      let names =
        List.map (fun (r : Obs.row) -> r.Obs.name) (Obs.snapshot ()).Obs.rows
      in
      check_bool "sorted by name" true
        (names = List.sort compare names);
      check_int "three rows" 3 (List.length names))

let test_histogram () =
  with_obs (fun () ->
      let h = Obs.histogram ~buckets:[| 10.; 100.; 1000. |] "test.lat" in
      List.iter (Obs.observe h) [ 5.; 50.; 500.; 5000.; 50.; 7. ];
      check_int "count" 6 (Obs.histogram_count h);
      check_bool "sum" true (Obs.histogram_sum h = 5612.);
      check_bool "max" true (Obs.histogram_max h = Some 5000.);
      match find_row "test.lat" with
      | Some { Obs.value = Obs.Histogram { buckets; counts; count; min; max; _ }; _ } ->
        check_int "bucket array" 3 (Array.length buckets);
        check_int "counts has +inf slot" 4 (Array.length counts);
        (* 5 and 7 in <=10; both 50s in <=100; 500 in <=1000; 5000
           overflows. *)
        check_bool "bucket counts" true (counts = [| 2; 2; 1; 1 |]);
        check_int "side-car count" 6 count;
        check_bool "side-car min" true (min = 5.);
        check_bool "side-car max" true (max = 5000.)
      | Some _ | None -> Alcotest.fail "histogram row missing")

(* Sliding histograms: the aggregate must equal an exact side-car
   computation over the retained windows at every rotation — counts,
   sum, min/max and per-bucket tallies — as observations age out. *)
let test_sliding_matches_exact_windows () =
  with_obs (fun () ->
      let buckets = [| 10.; 100.; 1000. |] in
      let windows = 3 in
      let h = Obs.sliding ~buckets ~windows "s.lat" in
      let feed =
        [ [ 5.; 50. ]; [ 500.; 7. ]; [ 5000. ]; []; [ 1.; 2.; 3.; 2000. ] ]
      in
      let bucket_of v =
        let i = ref 0 in
        while !i < Array.length buckets && v > buckets.(!i) do
          incr i
        done;
        !i
      in
      let rec take n = function
        | x :: rest when n > 0 -> x :: take (n - 1) rest
        | _ -> []
      in
      let retained = ref [] in
      List.iteri
        (fun round obs ->
          List.iter (Obs.observe_sliding h) obs;
          retained := obs :: !retained;
          let live = List.concat (take windows !retained) in
          let name = Printf.sprintf "round %d" round in
          (match Obs.sliding_value h with
          | Obs.Histogram { counts; count; sum; min; max; _ } ->
            check_int (name ^ ": count") (List.length live) count;
            check_bool (name ^ ": sum") true
              (sum = List.fold_left ( +. ) 0. live);
            let expected = Array.make (Array.length buckets + 1) 0 in
            List.iter
              (fun v ->
                let b = bucket_of v in
                expected.(b) <- expected.(b) + 1)
              live;
            check_bool (name ^ ": bucket counts") true (counts = expected);
            if count > 0 then begin
              check_bool (name ^ ": min") true
                (min = List.fold_left Float.min infinity live);
              check_bool (name ^ ": max") true
                (max = List.fold_left Float.max neg_infinity live)
            end
          | _ -> Alcotest.failf "%s: sliding_value is not a histogram" name);
          check_int (name ^ ": sliding_count") (List.length live)
            (Obs.sliding_count h);
          Obs.rotate h)
        feed;
      (* The registry snapshot renders the same aggregate, so quantile
         and the sinks work on sliding histograms unchanged. *)
      match find_row "s.lat" with
      | Some { Obs.value = Obs.Histogram { count; _ } as value; _ } ->
        check_int "snapshot aggregate count" (Obs.sliding_count h) count;
        check_bool "quantile served from the aggregate" true
          (Obs.quantile value 0.5 <> None)
      | Some _ | None -> Alcotest.fail "sliding row missing")

let test_sliding_validation () =
  with_obs (fun () ->
      (match Obs.sliding ~windows:0 "s.bad" with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "windows=0 must be rejected");
      (* Name-keyed like every other metric: same name, same ring. *)
      let a = Obs.sliding ~windows:2 "s.same" in
      Obs.observe_sliding (Obs.sliding ~windows:2 "s.same") 4.;
      check_int "same name, same sliding histogram" 1 (Obs.sliding_count a))

let test_default_buckets_ascending () =
  let b = Obs.default_buckets in
  check_bool "non-empty" true (Array.length b > 0);
  check_bool "strictly ascending" true
    (Array.for_all (fun ok -> ok)
       (Array.mapi (fun i v -> i = 0 || b.(i - 1) < v) b));
  check_bool "covers 1e2..5e9" true
    (b.(0) = 1e2 && b.(Array.length b - 1) = 5e9)

(* ------------------------------------------------------- quantiles *)

let test_quantile_agrees_with_exact () =
  (* The documented contract: the bucketed estimate always lands in
     the same bucket as the exact nearest-rank sample quantile, and is
     clamped to the min/max side-cars. *)
  with_obs (fun () ->
      let buckets = [| 10.; 20.; 50.; 100.; 200.; 500. |] in
      let h = Obs.histogram ~buckets "q.lat" in
      (* A deterministic long-tailed sample set spanning under- and
         overflow buckets. *)
      let samples =
        List.init 100 (fun i ->
            let i = i + 1 in
            if i <= 50 then float_of_int i  (* 1..50 *)
            else if i <= 90 then float_of_int (50 + ((i - 50) * 3))
            else float_of_int (200 + ((i - 90) * 70)))  (* up to 900 *)
      in
      List.iter (Obs.observe h) samples;
      let value =
        match find_row "q.lat" with
        | Some { Obs.value; _ } -> value
        | None -> Alcotest.fail "histogram row missing"
      in
      let sorted = Array.of_list (List.sort compare samples) in
      let exact q =
        (* nearest rank: the ceil (q * samples)-th smallest. *)
        let rank = int_of_float (ceil (q *. float_of_int (Array.length sorted))) in
        sorted.(max 0 (rank - 1))
      in
      let bucket_of v =
        let i = ref 0 in
        while !i < Array.length buckets && v > buckets.(!i) do incr i done;
        !i
      in
      List.iter
        (fun q ->
          match Obs.quantile value q with
          | None -> Alcotest.failf "no quantile at %g" q
          | Some est ->
            check_int
              (Printf.sprintf "p%g lands in the exact sample's bucket"
                 (100. *. q))
              (bucket_of (exact q)) (bucket_of est);
            check_bool
              (Printf.sprintf "p%g within side-cars" (100. *. q))
              true
              (est >= sorted.(0) && est <= sorted.(Array.length sorted - 1)))
        [ 0.5; 0.9; 0.99 ];
      (* The extremes stay inside the exact side-cars: p0 lands in the
         lowest sample's bucket bounded below by the true min, and p100
         — which falls in the +inf overflow bucket — clamps to the true
         max (the side-car is the only finite upper bound there). *)
      (match Obs.quantile value 0.0 with
      | None -> Alcotest.fail "no p0"
      | Some est ->
        check_int "p0 lands in the min's bucket" (bucket_of sorted.(0))
          (bucket_of est);
        check_bool "p0 bounded below by min" true (est >= sorted.(0)));
      check_bool "p100 clamps to max" true
        (Obs.quantile value 1.0 = Some sorted.(Array.length sorted - 1));
      (* Non-histogram values and empty histograms have no quantiles. *)
      check_bool "counter has no quantile" true
        (Obs.quantile (Obs.Counter 5) 0.5 = None);
      check_bool "gauge has no quantile" true
        (Obs.quantile (Obs.Gauge 5.) 0.5 = None);
      let empty = Obs.histogram ~buckets "q.empty" in
      ignore empty;
      match find_row "q.empty" with
      | Some { Obs.value; _ } ->
        check_bool "empty histogram has no quantile" true
          (Obs.quantile value 0.5 = None)
      | None -> Alcotest.fail "empty histogram row missing")

(* --------------------------------------------------------- events *)

let test_event_ring_bounded () =
  with_obs (fun () ->
      for i = 1 to Obs.event_capacity + 25 do
        Obs.event "tick" ~fields:[ ("i", string_of_int i) ]
      done;
      let events = Obs.events () in
      check_int "ring keeps capacity" Obs.event_capacity (List.length events);
      (* Oldest first, and the oldest 25 were dropped. *)
      (match events with
      | first :: _ ->
        check_bool "oldest dropped" true
          (first.Obs.fields = [ ("i", "26") ])
      | [] -> Alcotest.fail "no events");
      let seqs = List.map (fun (e : Obs.event) -> e.Obs.seq) events in
      check_bool "seq strictly increasing" true
        (List.sort compare seqs = seqs
        && List.length (List.sort_uniq compare seqs) = List.length seqs))

let test_disabled_is_inert () =
  Obs.reset ();
  Obs.set_enabled false;
  Obs.event "never";
  check_int "no events when disabled" 0 (List.length (Obs.events ()));
  let (), ns = Obs.timed "never-span" (fun () -> ()) in
  check_bool "timed still measures" true (ns >= 0.);
  check_bool "but records nothing" true (find_row "span.never-span-ns" = None);
  Obs.reset ()

(* ---------------------------------------------------------- spans *)

let test_timed_records_span () =
  with_obs (fun () ->
      let result, ns = Obs.timed "work" (fun () -> 21 * 2) in
      check_int "result passes through" 42 result;
      check_bool "elapsed non-negative" true (ns >= 0.);
      (match find_row "span.work-ns" with
      | Some { Obs.value = Obs.Histogram { count; _ }; _ } ->
        check_int "one observation" 1 count
      | Some _ | None -> Alcotest.fail "span histogram missing");
      check_bool "last-ns gauge set" true (gauge_row "span.work.last-ns" >= 0.);
      check_bool "span event emitted" true
        (List.exists
           (fun (e : Obs.event) -> e.Obs.name = "span:work")
           (Obs.events ())))

(* ---------------------------------------------------------- sinks *)

let test_json_lines_shape () =
  with_obs (fun () ->
      Obs.incr (Obs.counter "j.count");
      Obs.set (Obs.gauge "j.gauge") 1.5;
      Obs.observe (Obs.histogram "j.hist") 3.0;
      Obs.event "j.evt" ~fields:[ ("k", "v\"quoted\"") ];
      let lines =
        String.split_on_char '\n' (Obs.to_json_lines (Obs.snapshot ()))
        |> List.filter (fun l -> l <> "")
      in
      check_int "3 metric lines + 1 event line" 4 (List.length lines);
      List.iter
        (fun line ->
          check_bool "line is a JSON object" true
            (String.length line >= 2
            && line.[0] = '{'
            && line.[String.length line - 1] = '}'))
        lines;
      check_bool "counter line" true
        (List.exists
           (fun l ->
             Astring_contains.contains l {|"name": "j.count", "kind": "counter"|})
           lines);
      check_bool "quotes escaped in event fields" true
        (List.exists (fun l -> Astring_contains.contains l {|v\"quoted\"|}) lines))

let test_pp_table_smoke () =
  with_obs (fun () ->
      Obs.incr ~by:3 (Obs.counter "t.count");
      Obs.observe (Obs.histogram "t.hist") 250.;
      let text = Format.asprintf "%a" Obs.pp_table (Obs.snapshot ()) in
      check_bool "mentions the counter" true
        (Astring_contains.contains text "t.count");
      check_bool "mentions the histogram" true
        (Astring_contains.contains text "t.hist"))

(* --------------------------------------- machine instrumentation *)

let test_machine_instrumentation () =
  with_obs (fun () ->
      let system = Ssos.Reinstall.build ~obs:true () in
      Ssos.System.run system ~ticks:20_000;
      let machine = system.Ssos.System.machine in
      check_int "machine.ticks counts every tick"
        (Ssx.Machine.ticks machine)
        (counter_row "machine.ticks");
      check_bool "instructions executed" true (counter_row "machine.executed" > 0);
      check_bool "steps gauge tracks the machine" true
        (gauge_row "machine.steps" = float_of_int (Ssx.Machine.ticks machine));
      check_bool "memory writes counted" true
        (gauge_row "machine.mem.writes"
        = float_of_int (Ssx.Memory.write_count (Ssx.Machine.memory machine)));
      check_bool "watchdog gauge present" true
        (find_row "device.watchdog.bites" <> None);
      check_bool "nvstore gauge present" true
        (gauge_row "device.nvstore.images" >= 1.))

let test_disabled_build_attaches_nothing () =
  Obs.reset ();
  Obs.set_enabled false;
  let system = Ssos.Reinstall.build ~obs:false () in
  Ssos.System.run system ~ticks:5_000;
  check_int "registry stays empty" 0 (List.length (Obs.snapshot ()).Obs.rows);
  Obs.reset ()

(* --------------------------------------------- digest regressions *)

(* The historical inline FNV-1a from Snapshot.digest and
   Cluster.digest, verbatim: 64-bit parameters folded to OCaml's
   63-bit int after every multiply. *)
let reference_fnv bytes =
  let h = ref 0x4bf29ce484222325 in
  List.iter (fun b -> h := (!h lxor b) * 0x100000001b3 land max_int) bytes;
  Printf.sprintf "%016x" !h

let test_digest_matches_inline_string_form () =
  (* Cluster.digest's historical form: mix Char.code over a string. *)
  List.iter
    (fun s ->
      let bytes = List.init (String.length s) (fun i -> Char.code s.[i]) in
      check_string
        (Printf.sprintf "digest of %S" s)
        (reference_fnv bytes) (Ssx.Digest.string s))
    [ ""; "a"; "ssos"; "deadbeef;deadbeef;42"; String.make 300 '\xff' ]

let test_digest_matches_inline_register_form () =
  (* Snapshot.digest's historical form: name bytes then the register
     value as three explicitly masked bytes, least-significant first. *)
  let entries = [ ("ax", 0xBEEF); ("ip", 0x012345); ("psw", 0) ] in
  let reference =
    reference_fnv
      (List.concat_map
         (fun (name, v) ->
           List.init (String.length name) (fun i -> Char.code name.[i])
           @ [ v land 0xff; (v asr 8) land 0xff; (v asr 16) land 0xff ])
         entries)
  in
  let d = Ssx.Digest.create () in
  List.iter
    (fun (name, v) ->
      Ssx.Digest.add_string d name;
      Ssx.Digest.add_int24 d v)
    entries;
  check_string "register-summary encoding" reference (Ssx.Digest.to_hex d)

let test_digest_add_byte_masks () =
  let a = Ssx.Digest.create () and b = Ssx.Digest.create () in
  Ssx.Digest.add_byte a 0x1FF;
  Ssx.Digest.add_byte b 0xFF;
  check_string "only low 8 bits mixed" (Ssx.Digest.to_hex b)
    (Ssx.Digest.to_hex a);
  check_string "empty digest is the offset basis"
    (Printf.sprintf "%016x" 0x4bf29ce484222325)
    (Ssx.Digest.to_hex (Ssx.Digest.create ()))

let test_snapshot_digest_still_discriminates () =
  (* Digests through the shared module keep Snapshot.digest's
     semantics: equal states agree, a one-byte RAM change does not. *)
  let build () =
    let machine, _ = Helpers.machine_with "spin:\n    jmp spin\n" in
    Helpers.run_steps machine 100;
    machine
  in
  let a = build () and b = build () in
  check_string "identical machines, identical digests"
    (Ssx.Snapshot.digest (Ssx.Snapshot.capture a))
    (Ssx.Snapshot.digest (Ssx.Snapshot.capture b));
  Ssx.Memory.write_byte (Ssx.Machine.memory b) 0x7777 0x42;
  check_bool "one-byte change flips the digest" false
    (Ssx.Snapshot.digest (Ssx.Snapshot.capture a)
    = Ssx.Snapshot.digest (Ssx.Snapshot.capture b))

let suite =
  [ case "counters, gauges and sampled gauges" test_counters_and_gauges;
    case "snapshot rows are sorted" test_snapshot_rows_sorted;
    case "histogram buckets and side-cars" test_histogram;
    case "sliding histogram matches exact side-car windows"
      test_sliding_matches_exact_windows;
    case "sliding histogram validation and registry keying"
      test_sliding_validation;
    case "default buckets are sane" test_default_buckets_ascending;
    case "bucketed quantiles agree with exact nearest-rank"
      test_quantile_agrees_with_exact;
    case "event ring is bounded" test_event_ring_bounded;
    case "disabled switch is inert" test_disabled_is_inert;
    case "timed spans record histogram, gauge and event"
      test_timed_records_span;
    case "JSON lines sink" test_json_lines_shape;
    case "pretty table sink" test_pp_table_smoke;
    case "machine and device instrumentation end-to-end"
      test_machine_instrumentation;
    case "disabled build attaches no hooks" test_disabled_build_attaches_nothing;
    case "Digest matches the inline cluster form"
      test_digest_matches_inline_string_form;
    case "Digest matches the inline snapshot form"
      test_digest_matches_inline_register_form;
    case "Digest masks bytes; empty digest is the basis"
      test_digest_add_byte_masks;
    case "snapshot digests still discriminate" test_snapshot_digest_still_discriminates ]
