let () =
  Alcotest.run "ssos"
    [ ("word", Test_word.suite);
      ("flags", Test_flags.suite);
      ("memory", Test_memory.suite);
      ("registers", Test_registers.suite);
      ("codec", Test_codec.suite);
      ("cpu", Test_cpu.suite);
      ("cpu properties (differential)", Test_cpu_properties.suite);
      ("asm", Test_asm.suite);
      ("devices", Test_devices.suite);
      ("faults", Test_faults.suite);
      ("stabilization", Test_stab.suite);
      ("guest", Test_guest.suite);
      ("reinstall (section 3)", Test_reinstall.suite);
      ("preemptive guest and wiring variants", Test_preemptive.suite);
      ("monitor (section 4)", Test_monitor.suite);
      ("monitor over the journal kernel", Test_journal.suite);
      ("process model (section 5)", Test_process.suite);
      ("primitive scheduler (section 5.1)", Test_primitive.suite);
      ("self-stabilizing scheduler (section 5.2)", Test_sched.suite);
      ("baselines", Test_baselines.suite);
      ("algorithms", Test_algorithms.suite);
      ("graph algorithms", Test_graph_algorithms.suite);
      ("token ring on the tiny OS", Test_token_os.suite);
      ("experiments", Test_experiments.suite);
      ("network cluster (lib/net)", Test_net.suite);
      ("replicated state machine (lib/rsm)", Test_rsm.suite);
      ("campaign engine (differential)", Test_campaigns.suite);
      ("continuous-operation engine (lib/serve)", Test_serve.suite);
      ("abstract ring model (exhaustive checker)", Test_model.suite);
      ("adversarial scheduling daemons", Test_adversary.suite);
      ("tooling (trace, snapshot)", Test_tooling.suite);
      ("decode cache (differential)", Test_differential.suite);
      ("cross-cutting consistency", Test_consistency.suite);
      ("differential fuzzer", Test_fuzz.suite);
      ("observability (lib/obs)", Test_obs.suite);
      ("cli argument validation and --metrics", Test_cli.suite) ]
